// spb_verify — schedule model-checker CLI.
//
// Records the symbolic schedule of algorithm x distribution combinations
// and runs the src/verify model-checker on each: recorded-match-graph
// validation, wait-for-graph acyclicity, pool/segment confluence, and
// exhaustive exploration of alternative delivery orders.  Prints one
// verdict line per combination and exits nonzero unless every combination
// is certified.
//
//   spb_verify --machine paragon4x4                  # all algorithms
//   spb_verify --algo 2-Step --dist R --s 4 --verbose
//   spb_verify --out certs.json                      # JSON certificates
//   spb_verify --mutate cyclic-wait --expect-rejection   # self-test
//   spb_verify --random 10 --seed 7                  # fuzzed problems
//
// With --mutate, the recorded schedule is broken on purpose before
// checking; --expect-rejection inverts the exit status so CI can assert
// the checker has no false negatives.  With --random N, N seeded random
// problems (source count and placement drawn from --seed) are certified
// per algorithm — the nightly property job points this at a failing
// seed's configuration.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/mutate.h"
#include "analyze/record.h"
#include "common/check.h"
#include "common/rng.h"
#include "dist/distribution.h"
#include "machine/config.h"
#include "machine/registry.h"
#include "obs/json.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "verify/certificate.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): CLI main

struct Options {
  std::string machine = "paragon4x4";
  std::string algo = "all";
  std::string dist = "R";
  int s = 0;  // 0 = p/4 (at least 2)
  Bytes bytes = 2048;
  std::uint64_t seed = 1;
  std::vector<analyze::Mutation> mutations;
  bool expect_rejection = false;
  int random = 0;
  std::uint64_t max_states = 250'000;
  std::string out;
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --machine M    " << machine::Registry::instance().grammar()
      << "\n"
      << "  --algo A       algorithm name | all\n"
      << "  --dist D       R C E Dr Dl B Cr Sq Rand\n"
      << "  --s N          source count (default p/4, min 2)\n"
      << "  --bytes N      message length L in bytes (default 2048)\n"
      << "  --seed N       seed for Rand distribution / --mutate / --random\n"
      << "  --mutate M     drop-send | tag-mismatch | dup-chunk |\n"
      << "                 cyclic-wait | all — break the schedule first\n"
      << "  --expect-rejection   exit 0 iff every combo was rejected\n"
      << "  --random N     certify N seeded random problems per algorithm\n"
      << "  --max-states N lumped-state budget for exploration\n"
      << "  --out PATH     write all certificates as a JSON array\n"
      << "  --verbose      print full reasons for every combo\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machine") {
      o.machine = next(i);
    } else if (a == "--algo") {
      o.algo = next(i);
    } else if (a == "--dist") {
      o.dist = next(i);
    } else if (a == "--s") {
      o.s = std::stoi(next(i));
    } else if (a == "--bytes") {
      o.bytes = static_cast<Bytes>(std::stoull(next(i)));
    } else if (a == "--seed") {
      o.seed = std::stoull(next(i));
    } else if (a == "--mutate") {
      const std::string m = next(i);
      if (m == "all") {
        o.mutations = analyze::all_mutations();
      } else {
        o.mutations.push_back(analyze::mutation_from_name(m));
      }
    } else if (a == "--expect-rejection") {
      o.expect_rejection = true;
    } else if (a == "--random") {
      o.random = std::stoi(next(i));
    } else if (a == "--max-states") {
      o.max_states = std::stoull(next(i));
    } else if (a == "--out") {
      o.out = next(i);
    } else if (a == "--verbose") {
      o.verbose = true;
    } else {
      std::cerr << "unknown option " << a << "\n";
      usage(argv[0]);
    }
  }
  return o;
}

struct Tally {
  int combos = 0;
  int certified = 0;
  std::vector<verify::Certificate> certificates;
};

void report(const Options& opt, const stop::AlgorithmPtr& alg,
            const stop::Problem& problem, const std::string& label,
            verify::Certificate cert, Tally& tally) {
  cert.algorithm = alg->name();
  cert.machine = problem.machine.name;
  cert.message_bytes = problem.message_bytes;
  ++tally.combos;
  if (cert.certified) ++tally.certified;
  std::cout << label << cert.to_string() << "\n";
  if (opt.verbose && !cert.reasons.empty()) {
    for (const auto& r : cert.reasons) std::cout << "    " << r << "\n";
  }
  tally.certificates.push_back(std::move(cert));
}

int run_cli(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    return 0;
  }

  std::vector<stop::AlgorithmPtr> algorithms;
  if (opt.algo == "all") {
    algorithms = stop::all_algorithms();
  } else {
    algorithms.push_back(stop::find_algorithm(opt.algo));
  }
  const machine::MachineConfig machine = machine::from_name(opt.machine);

  verify::CertifyOptions copt;
  copt.explore.max_states = opt.max_states;

  Tally tally;
  for (const stop::AlgorithmPtr& alg : algorithms) {
    if (opt.random > 0) {
      // Seeded random problems: source count in [2, p], Rand placement.
      for (int trial = 0; trial < opt.random; ++trial) {
        Rng rng(opt.seed + static_cast<std::uint64_t>(trial));
        const int s =
            2 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(machine.p - 1)));
        const stop::Problem problem = stop::make_problem(
            machine, dist::Kind::kRandom, s, opt.bytes,
            opt.seed + static_cast<std::uint64_t>(trial));
        report(opt, alg, problem,
               "[trial " + std::to_string(trial) + "] ",
               verify::certify(*alg, problem, copt), tally);
      }
      continue;
    }

    const int s = opt.s > 0 ? opt.s : std::max(2, machine.p / 4);
    const stop::Problem problem = stop::make_problem(
        machine, dist::kind_from_name(opt.dist), s, opt.bytes, opt.seed);

    if (opt.mutations.empty()) {
      report(opt, alg, problem, "", verify::certify(*alg, problem, copt),
             tally);
      continue;
    }
    // Mutation self-test: record once, break the schedule, expect the
    // model-checker to reject every mutant.  Not every schedule has an
    // eligible op for every mutation (e.g. a fully wildcard program has
    // nothing to tag-mismatch); those combos are skipped, not failed.
    const analyze::RecordedRun run = analyze::record_run(*alg, problem);
    for (const analyze::Mutation m : opt.mutations) {
      analyze::MutationResult mutant;
      try {
        mutant = analyze::apply_mutation(run.schedule, m, opt.seed);
      } catch (const CheckError& e) {
        std::cout << "[" << analyze::mutation_name(m) << "] skipped "
                  << alg->name() << ": " << e.what() << "\n";
        continue;
      }
      verify::Certificate cert =
          verify::certify_schedule(mutant.schedule, problem.sources, copt);
      report(opt, alg, problem, "[" + analyze::mutation_name(m) + "] ",
             std::move(cert), tally);
    }
  }

  if (!opt.out.empty()) {
    std::ofstream os(opt.out);
    SPB_REQUIRE(os.good(), "cannot open --out file '" << opt.out << "'");
    obs::JsonWriter w(os);
    w.begin_array();
    for (const auto& cert : tally.certificates) {
      verify::write_certificate(w, cert);
    }
    w.end_array();
    os << "\n";
  }

  if (opt.expect_rejection) {
    const bool all_rejected = tally.certified == 0 && tally.combos > 0;
    std::cout << (all_rejected ? "self-test ok: " : "self-test FAILED: ")
              << tally.combos - tally.certified << "/" << tally.combos
              << " combos rejected\n";
    return all_rejected ? 0 : 1;
  }
  std::cout << tally.certified << "/" << tally.combos
            << " combinations certified\n";
  return tally.certified == tally.combos ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "spb_verify: " << e.what() << "\n";
    return 2;
  }
}
