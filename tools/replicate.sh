#!/usr/bin/env bash
# Full replication pass: build, test, run every figure/ablation/extension
# bench, and export the figure series as CSV.  Artifacts land in the repo
# root (test_output.txt, bench_output.txt) and results/ (CSV series).
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build || exit 1

ctest --test-dir build 2>&1 | tee test_output.txt
status=${PIPESTATUS[0]}

for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt
bench_status=$?

./build/bench/export_csv results

echo
echo "tests:   $(grep -E 'tests passed' test_output.txt | tail -1)"
echo "benches: $(grep -c '^\[PASS\]' bench_output.txt) PASS / $(grep -c '^\[FAIL\]' bench_output.txt) FAIL"
exit $((status || bench_status))
