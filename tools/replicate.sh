#!/usr/bin/env bash
# Full replication pass: build, test, run every figure/ablation/extension
# bench, and export the figure series as CSV.  Artifacts land in the repo
# root (test_output.txt, bench_output.txt) and results/ (CSV series).
#
# Sweeps fan out over all cores (--jobs / SPB_BENCH_JOBS); results are
# byte-identical to a serial run.  The bench loop fails fast: the first
# binary with a broken claim set stops the pass.
set -u
cd "$(dirname "$0")/.."
jobs=$(nproc)

cmake -B build -G Ninja
cmake --build build || exit 1

ctest --test-dir build -j "$jobs" 2>&1 | tee test_output.txt
status=${PIPESTATUS[0]}

# Figure/ablation/extension benches.  micro_core (google-benchmark),
# perf_harness (perf regression JSON), and export_csv (runs below) are
# not claim checkers; skip them here.
bench_status=0
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$(basename "$b")" in
    micro_core | perf_harness | export_csv) continue ;;
  esac
  echo "== $b =="
  if ! SPB_BENCH_JOBS="$jobs" "$b" >> bench_output.txt 2>&1; then
    bench_status=1
    echo "FAILED: $b (see bench_output.txt)" >&2
    break
  fi
done

if [ "$bench_status" -eq 0 ]; then
  ./build/tools/analyze_schedule --jobs "$jobs" || bench_status=1
fi
if [ "$bench_status" -eq 0 ]; then
  ./build/bench/export_csv results --jobs "$jobs" || bench_status=1
fi

echo
echo "tests:   $(grep -E 'tests passed' test_output.txt | tail -1)"
echo "benches: $(grep -c '^\[PASS\]' bench_output.txt) PASS / $(grep -c '^\[FAIL\]' bench_output.txt) FAIL"
exit $((status || bench_status))
