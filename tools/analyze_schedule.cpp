// analyze_schedule — static communication-schedule checker CLI.
//
// Records the symbolic send/recv schedule of every algorithm x source
// distribution x machine combination and runs the src/analyze static
// checks on it: send/recv matching, wait-for-graph acyclicity, chunk
// coverage/provenance, and round/volume bounds with link-conflict counts.
// Exits nonzero when any combination violates a check.
//
//   analyze_schedule                 # full sweep: 4x4, 8x8 Paragon + 8x8x8 T3D
//   analyze_schedule --jobs 8        # same sweep, 8 worker threads
//   analyze_schedule --machine paragon8x8 --algo Br_Lin --dist Cr
//   analyze_schedule --mutate drop-send   # seed a bug, expect a red report
//
// With --mutate, the recorded schedule is mutated before analysis; the
// checker must flag it (exit stays nonzero unless --expect-violations is
// given, which inverts the verdict for use as a self-test).
//
// Combinations are independent simulations, so --jobs N runs them on a
// thread pool; results are buffered per combination and printed in grid
// order, making the output byte-identical to a serial run.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/mutate.h"
#include "analyze/sweep.h"
#include "common/check.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "machine/registry.h"
#include "stop/algorithm.h"
#include "sweep_runner.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): CLI main

struct MachineChoice {
  std::string key;
  machine::MachineConfig config;
};

std::vector<MachineChoice> make_machines(const std::string& filter) {
  std::vector<MachineChoice> all;
  all.push_back({"paragon4x4", machine::paragon(4, 4)});
  all.push_back({"paragon8x8", machine::paragon(8, 8)});
  all.push_back({"t3d512", machine::t3d(512)});
  if (filter == "all") return all;
  for (auto& m : all)
    if (m.key == filter) return {std::move(m)};
  // Any registered machine spec narrows the sweep to that one machine
  // (machine::Registry throws the pattern-enumerating error on junk).
  return {{filter, machine::from_name(filter)}};
}

struct Options {
  std::string machine = "all";
  std::string algo = "all";
  std::string dist = "all";
  int s = 0;  // 0 = p/4 (at least 2)
  Bytes bytes = 2048;
  std::uint64_t seed = 1;
  std::vector<analyze::Mutation> mutations;
  fault::FaultSpec faults;
  std::uint64_t fault_seed = 1;
  bool expect_violations = false;
  bool verbose = false;
  double step_slack = 0.0;
  double volume_slack = 0.0;
  int jobs = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --machine M    all (default sweep) | "
      << machine::Registry::instance().grammar() << "\n"
      << "  --algo A       algorithm name (see --list) | all\n"
      << "  --dist D       R C E Dr Dl B Cr Sq Rand | all\n"
      << "  --s N          source count (default p/4, min 2)\n"
      << "  --bytes N      message length L in bytes (default 2048)\n"
      << "  --seed N       seed for Rand distribution and mutations\n"
      << "  --mutate M     drop-send | tag-mismatch | dup-chunk | all\n"
      << "  --faults [SEED:]SPEC   deterministic fault injection, e.g.\n"
      << "                 42:drop=0.1,links=0.25x4,straggle=1x3 (keys:\n"
      << "                 drop, dup, links=FRACxDIV, lat, straggle=NxF,\n"
      << "                 window, timeout, attempts); verification and the\n"
      << "                 static checks must still pass under any plan\n"
      << "  --expect-violations   exit 0 iff every combo was flagged\n"
      << "  --step-slack X / --volume-slack X   optional quality gates\n"
      << "  --jobs N       worker threads (0 = all cores; default 1);\n"
      << "                 output is byte-identical for every N\n"
      << "  --list         print algorithm and distribution names\n"
      << "  --verbose      print the full report for every combo\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machine") {
      o.machine = next(i);
    } else if (a == "--algo") {
      o.algo = next(i);
    } else if (a == "--dist") {
      o.dist = next(i);
    } else if (a == "--s") {
      o.s = std::stoi(next(i));
    } else if (a == "--bytes") {
      o.bytes = static_cast<Bytes>(std::stoull(next(i)));
    } else if (a == "--seed") {
      o.seed = std::stoull(next(i));
    } else if (a == "--mutate") {
      const std::string m = next(i);
      if (m == "all") {
        o.mutations = analyze::all_mutations();
      } else {
        o.mutations.push_back(analyze::mutation_from_name(m));
      }
    } else if (a == "--faults") {
      // "[SEED:]SPEC": an optional plan seed, then the comma-separated spec.
      std::string text = next(i);
      const std::size_t colon = text.find(':');
      if (colon != std::string::npos) {
        const std::string seed_text = text.substr(0, colon);
        try {
          std::size_t used = 0;
          o.fault_seed = std::stoull(seed_text, &used);
          SPB_REQUIRE(used == seed_text.size(), "trailing junk");
        } catch (const std::exception&) {
          SPB_REQUIRE(false, "bad fault seed '"
                                 << seed_text
                                 << "' in --faults (want [SEED:]SPEC)");
        }
        text = text.substr(colon + 1);
      }
      o.faults = fault::FaultSpec::parse(text);
    } else if (a == "--expect-violations") {
      o.expect_violations = true;
    } else if (a == "--step-slack") {
      o.step_slack = std::stod(next(i));
    } else if (a == "--volume-slack") {
      o.volume_slack = std::stod(next(i));
    } else if (a == "--jobs") {
      o.jobs = std::stoi(next(i));
      if (o.jobs == 0) o.jobs = bench::SweepRunner::hardware_jobs();
    } else if (a == "--list") {
      std::cout << "algorithms:\n";
      for (const auto& alg : stop::all_algorithms())
        std::cout << "  " << alg->name() << "\n";
      std::cout << "distributions:\n";
      for (const dist::Kind k : dist::all_kinds())
        std::cout << "  " << dist::kind_name(k) << "\n";
      std::exit(0);
    } else if (a == "--verbose") {
      o.verbose = true;
    } else {
      std::cerr << "unknown option " << a << "\n";
      usage(argv[0]);
    }
  }
  return o;
}

int run_cli(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    return 0;
  }

  std::vector<stop::AlgorithmPtr> algorithms;
  if (opt.algo == "all") {
    algorithms = stop::all_algorithms();
  } else {
    algorithms.push_back(stop::find_algorithm(opt.algo));
  }
  std::vector<dist::Kind> kinds;
  if (opt.dist == "all") {
    kinds = dist::all_kinds();
  } else {
    kinds.push_back(dist::kind_from_name(opt.dist));
  }

  analyze::SweepOptions sopt;
  sopt.s = opt.s;
  sopt.bytes = opt.bytes;
  sopt.seed = opt.seed;
  sopt.mutations = opt.mutations;
  sopt.faults = opt.faults;
  sopt.fault_seed = opt.fault_seed;
  sopt.verbose = opt.verbose;
  sopt.analysis.max_step_slack = opt.step_slack;
  sopt.analysis.max_volume_slack = opt.volume_slack;

  std::vector<analyze::SweepCombo> grid;
  for (const MachineChoice& mc : make_machines(opt.machine))
    for (const stop::AlgorithmPtr& alg : algorithms)
      for (const dist::Kind kind : kinds)
        grid.push_back({mc.key, mc.config, alg, kind});

  // Each combination fills its own slot; printing in grid order afterwards
  // makes the output independent of the job count.
  std::vector<analyze::ComboResult> results(grid.size());
  const bench::SweepRunner runner(opt.jobs);
  runner.run(grid.size(), [&](std::size_t i) {
    results[i] = analyze::analyze_combo(grid[i], sopt);
  });

  int combos = 0;
  int flagged = 0;
  for (const analyze::ComboResult& r : results) {
    std::cout << r.text;
    combos += r.combos;
    flagged += r.flagged;
  }

  if (opt.expect_violations) {
    const bool all_flagged = flagged == combos && combos > 0;
    std::cout << (all_flagged ? "self-test ok: " : "self-test FAILED: ")
              << flagged << "/" << combos << " combos flagged\n";
    return all_flagged ? 0 : 1;
  }
  std::cout << combos << " combinations analyzed, " << flagged
            << " with violations\n";
  return flagged == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad CLI input (unknown machine/algorithm/distribution name) surfaces as
  // CheckError; report it like a usage error instead of aborting.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "analyze_schedule: " << e.what() << "\n";
    return 2;
  }
}
