#!/usr/bin/env python3
"""Tests for bench_compare.py's gate and its input validation.

Written as unittest.TestCase so both runners work:

    python3 tools/test_bench_compare.py     # stdlib only
    pytest tools/test_bench_compare.py      # CI

Each case invokes the script as a subprocess — the exit code IS the
interface CI depends on, so that is what gets asserted.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run_compare(baseline: object, current: object, *extra: str,
                raw_current: str | None = None):
    """Runs bench_compare.py on two temp files; `raw_current` substitutes
    literal (possibly malformed) file contents for the current side."""
    with tempfile.TemporaryDirectory() as d:
        bpath = os.path.join(d, "baseline.json")
        cpath = os.path.join(d, "current.json")
        with open(bpath, "w") as f:
            json.dump(baseline, f)
        with open(cpath, "w") as f:
            f.write(raw_current if raw_current is not None
                    else json.dumps(current))
        return subprocess.run(
            [sys.executable, SCRIPT, bpath, cpath, *extra],
            capture_output=True, text=True)


def doc(**metrics):
    return {"metrics": metrics}


class BenchCompareGate(unittest.TestCase):
    def test_identical_metrics_pass(self):
        r = run_compare(doc(run_ms=100.0, combos_per_sec=50.0),
                        doc(run_ms=100.0, combos_per_sec=50.0))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("all gated metrics within", r.stdout)

    def test_time_regression_fails(self):
        r = run_compare(doc(run_ms=100.0), doc(run_ms=200.0),
                        "--max-regress", "1.5")
        self.assertEqual(r.returncode, 1)
        self.assertIn("REGRESSED", r.stdout)

    def test_rate_regression_fails(self):
        r = run_compare(doc(combos_per_sec=100.0), doc(combos_per_sec=40.0),
                        "--max-regress", "1.5")
        self.assertEqual(r.returncode, 1)

    def test_info_metrics_never_gate(self):
        r = run_compare(doc(peak_queue_depth=10.0),
                        doc(peak_queue_depth=9999.0))
        self.assertEqual(r.returncode, 0)

    def test_missing_baseline_key_in_current_fails(self):
        # A metric the baseline gates on must not silently vanish from the
        # candidate — a renamed metric would otherwise disable its gate.
        r = run_compare(doc(run_ms=100.0, sweep_ms=50.0), doc(run_ms=100.0))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing from current run", r.stderr)
        self.assertIn("sweep_ms", r.stderr)

    def test_new_gateable_metric_is_reported_not_silent(self):
        # A time/rate metric the baseline has never seen passes (nothing to
        # compare against) but must be loudly flagged so the author
        # re-baselines — after which it is gated like any other metric.
        r = run_compare(doc(run_ms=100.0), doc(run_ms=100.0, extra_ms=5.0))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("NEW (not gated)", r.stdout)
        self.assertIn("missing from the baseline", r.stderr)
        self.assertIn("extra_ms", r.stderr)

    def test_new_gateable_metric_fails_with_fail_on_new(self):
        r = run_compare(doc(run_ms=100.0), doc(run_ms=100.0, extra_ms=5.0),
                        "--fail-on-new")
        self.assertEqual(r.returncode, 1)
        self.assertIn("not in baseline", r.stderr)

    def test_new_info_metric_stays_silent(self):
        r = run_compare(doc(run_ms=100.0),
                        doc(run_ms=100.0, peak_queue_depth=7.0),
                        "--fail-on-new")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("NEW", r.stdout)

    def test_baselined_metric_is_gated_thereafter(self):
        # Once the new metric lands in the baseline, a regression on it
        # fails — the "reported once, gated thereafter" contract.
        r = run_compare(doc(run_ms=100.0, extra_ms=5.0),
                        doc(run_ms=100.0, extra_ms=50.0),
                        "--max-regress", "1.5")
        self.assertEqual(r.returncode, 1)
        self.assertIn("extra_ms", r.stderr)


class BenchCompareInputValidation(unittest.TestCase):
    def assert_clean_failure(self, result, *needles):
        """Non-zero exit with a one-line diagnostic, not a traceback."""
        self.assertNotEqual(result.returncode, 0)
        self.assertNotIn("Traceback", result.stderr)
        for needle in needles:
            self.assertIn(needle, result.stderr)

    def test_malformed_json_current(self):
        r = run_compare(doc(run_ms=1.0), None, raw_current="{not json")
        self.assert_clean_failure(r, "not valid JSON", "current")

    def test_missing_metrics_key(self):
        r = run_compare(doc(run_ms=1.0), {"results": {"run_ms": 1.0}})
        self.assert_clean_failure(r, '"metrics"', "current")

    def test_non_numeric_metric_values(self):
        r = run_compare(doc(run_ms=1.0), {"metrics": {"run_ms": "fast"}})
        self.assert_clean_failure(r, "numbers")

    def test_missing_file(self):
        r = subprocess.run(
            [sys.executable, SCRIPT, "/nonexistent/base.json",
             "/nonexistent/cur.json"],
            capture_output=True, text=True)
        self.assert_clean_failure(r, "cannot read", "baseline")

    def test_malformed_baseline_reported_as_baseline(self):
        with tempfile.TemporaryDirectory() as d:
            bpath = os.path.join(d, "baseline.json")
            cpath = os.path.join(d, "current.json")
            with open(bpath, "w") as f:
                f.write("[1, 2")
            with open(cpath, "w") as f:
                json.dump(doc(run_ms=1.0), f)
            r = subprocess.run([sys.executable, SCRIPT, bpath, cpath],
                               capture_output=True, text=True)
        self.assert_clean_failure(r, "not valid JSON", "baseline")


if __name__ == "__main__":
    unittest.main()
