// spb_serve — the concurrent broadcast-planning service.
//
// Reads JSONL requests (see src/serve/protocol.h) from stdin or --in,
// serves them on a fixed worker pool over a sharded, coalescing plan
// cache, and writes one JSONL response per request in request order.
// Responses are pure functions of the request stream: the output is
// byte-identical for any --workers value on plan-only traffic.
//
//   spb_serve --machine paragon16x16 --workers 8 < requests.jsonl
//   spb_serve --demo 1000 --seed 7 --report serve_report.json
//   echo '{"op":"plan","dist":"B","sources":16,"len":6144}' | spb_serve
//
// --demo N skips stdin and drives N seeded plan requests from a fixed
// template pool (the spb_plan --replay stream, in wire form) — the
// self-contained smoke mode CI runs.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/parse.h"
#include "common/rng.h"
#include "dist/distribution.h"
#include "machine/config.h"
#include "machine/registry.h"
#include "obs/report.h"
#include "serve/server.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): CLI main

struct Options {
  serve::ServerOptions server;
  std::string in;      // "" = stdin
  std::string out;     // "" = stdout
  std::string report;  // "" = no report
  int demo = 0;        // > 0 = generate a seeded demo stream instead
  std::uint64_t seed = 1;
  bool shed = false;  // non-blocking admission (answer "overloaded")
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] < requests.jsonl\n"
      << "  --machine M         default machine for requests that do not\n"
      << "                      name one (default paragon8x8; list =\n"
      << "                      catalogue): "
      << machine::Registry::instance().grammar() << "\n"
      << "  --workers N         worker threads (default 4)\n"
      << "  --shards N          plan-cache shards (default 8)\n"
      << "  --cache-capacity N  plan-cache entries (default 4096)\n"
      << "  --max-queue N       pending-request bound (default 1024)\n"
      << "  --shed              answer \"overloaded\" when the queue is\n"
      << "                      full instead of blocking the reader (the\n"
      << "                      non-cooperative service semantics)\n"
      << "  --in FILE           read requests here instead of stdin\n"
      << "  --out FILE          write responses here instead of stdout\n"
      << "  --report FILE       write the serve report JSON here at exit\n"
      << "  --demo N            serve N seeded plan requests from the\n"
      << "                      built-in template pool (ignores stdin)\n"
      << "  --seed N            demo stream seed (default 1)\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machine") {
      o.server.machine = next(i);
    } else if (a == "--workers") {
      o.server.workers =
          static_cast<int>(parse_u64_or_throw("--workers", next(i)));
    } else if (a == "--shards") {
      o.server.cache_shards = parse_u64_or_throw("--shards", next(i));
    } else if (a == "--cache-capacity") {
      o.server.cache_capacity =
          parse_u64_or_throw("--cache-capacity", next(i));
    } else if (a == "--max-queue") {
      o.server.max_queue = parse_u64_or_throw("--max-queue", next(i));
    } else if (a == "--in") {
      o.in = next(i);
    } else if (a == "--out") {
      o.out = next(i);
    } else if (a == "--report") {
      o.report = next(i);
    } else if (a == "--demo") {
      o.demo = static_cast<int>(parse_u64_or_throw("--demo", next(i)));
      SPB_REQUIRE(o.demo >= 1, "--demo wants at least one request");
    } else if (a == "--seed") {
      o.seed = parse_u64_or_throw("--seed", next(i));
    } else if (a == "--shed") {
      o.shed = true;
    } else {
      std::cerr << "unknown option " << a << "\n";
      usage(argv[0]);
    }
  }
  return o;
}

/// The spb_plan --replay template pool, rendered as wire requests: 32
/// seeded templates, the stream samples among them (high steady-state hit
/// rate without hand-tuning), plus a closing stats barrier.
void submit_demo(serve::Server& server, const machine::MachineConfig& mc,
                 int count, std::uint64_t seed) {
  const std::vector<int> s_pool = {
      std::max(1, mc.p / 8), std::max(1, mc.p / 4),
      std::max(1, (3 * mc.p) / 8), std::max(1, mc.p / 2)};
  const std::vector<Bytes> len_pool = {512, 1024, 6144, 32768};
  const auto& kinds = dist::all_kinds();

  constexpr int kPoolSize = 32;
  struct Template {
    std::string dist;
    int sources;
    Bytes len;
    std::uint64_t dist_seed;
  };
  Rng pool_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Template> pool;
  pool.reserve(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    Template t;
    t.dist = dist::kind_name(kinds[pool_rng.next_below(kinds.size())]);
    t.sources = s_pool[pool_rng.next_below(s_pool.size())];
    t.len = len_pool[pool_rng.next_below(len_pool.size())];
    t.dist_seed = 1 + pool_rng.next_below(4);
    pool.push_back(t);
  }

  Rng stream_rng(seed);
  for (int i = 0; i < count; ++i) {
    const Template& t = pool[stream_rng.next_below(pool.size())];
    const Bytes len = t.len + static_cast<Bytes>(stream_rng.next_below(
                                  static_cast<std::uint64_t>(t.len / 8 + 1)));
    std::ostringstream line;
    line << "{\"op\":\"plan\",\"dist\":\"" << t.dist
         << "\",\"sources\":" << t.sources << ",\"len\":" << len
         << ",\"seed\":" << t.dist_seed << "}";
    server.submit_line_wait(line.str());
  }
  server.submit_line_wait("{\"op\":\"stats\",\"deterministic\":true}");
}

int run_cli(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.server.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    return 0;
  }

  std::ofstream out_file;
  if (!opt.out.empty()) {
    out_file.open(opt.out);
    SPB_REQUIRE(out_file.good(), "cannot write to '" << opt.out << "'");
  }
  std::ostream& os = opt.out.empty() ? std::cout : out_file;

  const auto t0 = std::chrono::steady_clock::now();
  serve::Server server(opt.server, os);

  if (opt.demo > 0) {
    const machine::MachineConfig mc = machine::from_name(opt.server.machine);
    submit_demo(server, mc, opt.demo, opt.seed);
  } else {
    std::ifstream in_file;
    if (!opt.in.empty()) {
      in_file.open(opt.in);
      SPB_REQUIRE(in_file.good(), "cannot read '" << opt.in << "'");
    }
    std::istream& is = opt.in.empty() ? std::cin : in_file;
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;  // blank lines are keep-alives, not errors
      if (opt.shed)
        server.submit_line(line);
      else
        server.submit_line_wait(line);
    }
  }

  server.drain();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (!opt.report.empty()) {
    obs::ServeSection section = server.report_section();
    section.wall_ms = wall_ms;
    section.requests_per_sec =
        wall_ms > 0 ? static_cast<double>(server.submitted()) * 1000.0 /
                          wall_ms
                    : 0;
    std::ofstream report(opt.report);
    SPB_REQUIRE(report.good(), "cannot write to '" << opt.report << "'");
    obs::write_serve_report(report, section);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "spb_serve: " << e.what() << "\n";
    return 2;
  }
}
