#include "coll/alltoall.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "common/check.h"
#include "net/topology.h"

namespace spb::coll {
namespace {

TEST(ExchangeSchedule, XorForPowersOfTwo) {
  EXPECT_TRUE(uses_xor_schedule(2));
  EXPECT_TRUE(uses_xor_schedule(128));
  EXPECT_FALSE(uses_xor_schedule(100));
  EXPECT_FALSE(uses_xor_schedule(3));
  // XOR rounds are self-inverse matchings: partner(partner(x)) == x.
  for (int t = 1; t < 16; ++t)
    for (int pos = 0; pos < 16; ++pos)
      EXPECT_EQ(exchange_partner(16, exchange_partner(16, pos, t), t), pos);
}

TEST(ExchangeSchedule, EveryRoundIsAPermutation) {
  for (const int n : {2, 3, 7, 16, 100}) {
    for (int t = 1; t < n; ++t) {
      std::set<int> targets;
      for (int pos = 0; pos < n; ++pos) {
        const int to = exchange_partner(n, pos, t);
        EXPECT_NE(to, pos);
        EXPECT_GE(to, 0);
        EXPECT_LT(to, n);
        EXPECT_TRUE(targets.insert(to).second);
      }
      EXPECT_EQ(static_cast<int>(targets.size()), n);
    }
  }
}

TEST(ExchangeSchedule, EveryPairMeetsExactlyOnceAsSenderReceiver) {
  for (const int n : {4, 9, 16}) {
    std::set<std::pair<int, int>> seen;
    for (int t = 1; t < n; ++t)
      for (int pos = 0; pos < n; ++pos)
        EXPECT_TRUE(seen.insert({pos, exchange_partner(n, pos, t)}).second);
    EXPECT_EQ(static_cast<int>(seen.size()), n * (n - 1));
  }
}

TEST(ExchangeSchedule, RejectsBadRounds) {
  EXPECT_THROW(exchange_partner(4, 0, 0), CheckError);
  EXPECT_THROW(exchange_partner(4, 0, 4), CheckError);
  EXPECT_THROW(exchange_partner(1, 0, 1), CheckError);
}

struct ExchangeRun {
  std::vector<mp::Payload> data;
  mp::RunMetrics metrics;
};

ExchangeRun run_exchange(int p, const std::vector<Rank>& sources,
                         Bytes bytes) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 100.0;
  mp::CommParams cp;
  cp.send_overhead_us = 5.0;
  cp.recv_overhead_us = 5.0;
  mp::Runtime rt(std::make_shared<net::LinearArray>(p), np, cp,
                 net::RankMapping::identity(p));

  auto seq = std::make_shared<const std::vector<Rank>>([p] {
    std::vector<Rank> v(static_cast<std::size_t>(p));
    std::iota(v.begin(), v.end(), 0);
    return v;
  }());
  std::vector<char> flags(static_cast<std::size_t>(p), 0);
  for (const Rank s : sources) flags[static_cast<std::size_t>(s)] = 1;
  auto is_source = std::make_shared<const std::vector<char>>(flags);

  ExchangeRun result;
  result.data.assign(static_cast<std::size_t>(p), mp::Payload{});
  for (const Rank s : sources)
    result.data[static_cast<std::size_t>(s)] = mp::Payload::original(s, bytes);
  for (Rank r = 0; r < p; ++r) {
    rt.spawn(r,
             personalized_exchange(rt.comm(r), seq, r, is_source,
                                   result.data[static_cast<std::size_t>(r)]));
  }
  const mp::RunOutcome out = rt.run();
  result.metrics = out.metrics;
  return result;
}

mp::Payload expected(const std::vector<Rank>& sources, Bytes bytes) {
  std::vector<mp::Chunk> chunks;
  for (const Rank s : sources) chunks.push_back({s, bytes});
  return mp::Payload::of(std::move(chunks));
}

TEST(PersonalizedExchange, BroadcastsOnPowerOfTwo) {
  const std::vector<Rank> sources = {1, 4, 6};
  const auto r = run_exchange(8, sources, 50);
  for (const auto& d : r.data) EXPECT_EQ(d, expected(sources, 50));
}

TEST(PersonalizedExchange, BroadcastsOnNonPowerOfTwo) {
  const std::vector<Rank> sources = {0, 3, 5, 9};
  const auto r = run_exchange(10, sources, 50);
  for (const auto& d : r.data) EXPECT_EQ(d, expected(sources, 50));
}

TEST(PersonalizedExchange, MessageCountIsSourcesTimesPMinusOne) {
  const std::vector<Rank> sources = {2, 7};
  const auto r = run_exchange(9, sources, 16);
  EXPECT_EQ(r.metrics.total_sends, 2u * 8u);
  EXPECT_EQ(r.metrics.total_recvs, 2u * 8u);
  // Every source sent p-1 originals — the paper's #send/rec O(p) column.
  EXPECT_EQ(r.metrics.max_send_recv, 8u + 1u);  // 8 sends + 1 recv (other source)
}

TEST(PersonalizedExchange, AllSourcesSaturates) {
  const int p = 6;
  std::vector<Rank> sources(p);
  std::iota(sources.begin(), sources.end(), 0);
  const auto r = run_exchange(p, sources, 8);
  for (const auto& d : r.data) EXPECT_EQ(d, expected(sources, 8));
  EXPECT_EQ(r.metrics.total_sends,
            static_cast<std::uint64_t>(p) * (p - 1));
}

TEST(PersonalizedExchange, SingleRankNoTraffic) {
  const auto r = run_exchange(1, {0}, 8);
  EXPECT_EQ(r.metrics.total_sends, 0u);
  EXPECT_EQ(r.data[0], expected({0}, 8));
}

}  // namespace
}  // namespace spb::coll
