// The binary bcast tree supports arbitrary roots via logical rotation;
// these tests pin down that machinery (the heap shape must hold no matter
// where the root sits) and run a pipelined broadcast from a non-zero root.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "coll/pipeline.h"
#include "net/topology.h"

namespace spb::coll {
namespace {

TEST(BcastTreeRotation, RootCanBeAnyPosition) {
  for (const int n : {2, 7, 16}) {
    for (int root = 0; root < n; ++root) {
      const BcastTree t = BcastTree::binary(n, root);
      EXPECT_EQ(t.root, root);
      EXPECT_EQ(t.parent[static_cast<std::size_t>(root)], -1);
      // Every position reachable, parents consistent with children.
      std::set<int> seen{root};
      std::vector<int> frontier{root};
      while (!frontier.empty()) {
        const int at = frontier.back();
        frontier.pop_back();
        for (const int c : t.children[static_cast<std::size_t>(at)]) {
          EXPECT_EQ(t.parent[static_cast<std::size_t>(c)], at);
          EXPECT_TRUE(seen.insert(c).second);
          frontier.push_back(c);
        }
      }
      EXPECT_EQ(static_cast<int>(seen.size()), n) << "n=" << n
                                                  << " root=" << root;
    }
  }
}

TEST(BcastTreeRotation, PipelinedBcastFromMiddleRoot) {
  const int p = 11;
  const int root = 6;
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 100.0;
  mp::CommParams cp;
  cp.send_overhead_us = 2.0;
  cp.recv_overhead_us = 2.0;
  mp::Runtime rt(std::make_shared<net::LinearArray>(p), np, cp,
                 net::RankMapping::identity(p));
  auto seq = std::make_shared<const std::vector<Rank>>([p] {
    std::vector<Rank> v(static_cast<std::size_t>(p));
    std::iota(v.begin(), v.end(), 0);
    return v;
  }());
  auto tree = std::make_shared<const BcastTree>(BcastTree::binary(p, root));
  std::vector<mp::Payload> data(static_cast<std::size_t>(p));
  data[root] = mp::Payload::original(root, 9000);
  for (Rank r = 0; r < p; ++r)
    rt.spawn(r, pipelined_bcast(rt.comm(r), seq, r, tree,
                                data[static_cast<std::size_t>(r)],
                                /*total_wire=*/9040, /*segment=*/1000));
  rt.run();
  for (const auto& d : data)
    EXPECT_EQ(d, mp::Payload::original(root, 9000));
}

}  // namespace
}  // namespace spb::coll
