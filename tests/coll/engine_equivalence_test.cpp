// Property: the runtime engine (coroutines, real timing, contention) and
// a pure schedule interpreter must deliver identical final chunk sets for
// random problems — timing must never change *what* is communicated.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "coll/engine.h"
#include "coll/halving.h"
#include "common/rng.h"
#include "net/topology.h"

namespace spb::coll {
namespace {

// Interpreter over chunk-id sets (mirrors the engine's dedup semantics).
std::vector<std::set<int>> interpret(const HalvingSchedule& s,
                                     const std::vector<char>& active) {
  const int n = s.size();
  std::vector<std::set<int>> data(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    if (active[static_cast<std::size_t>(i)])
      data[static_cast<std::size_t>(i)].insert(i);
  for (int iter = 0; iter < s.iterations(); ++iter) {
    const auto snapshot = data;
    for (int pos = 0; pos < n; ++pos)
      for (const Action& a : s.actions(iter, pos))
        if (a.type == Action::Type::kRecv)
          data[static_cast<std::size_t>(pos)].insert(
              snapshot[static_cast<std::size_t>(a.peer)].begin(),
              snapshot[static_cast<std::size_t>(a.peer)].end());
  }
  return data;
}

TEST(EngineEquivalence, MatchesInterpreterOnRandomProblems) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int p = 2 + static_cast<int>(rng.next_below(24));
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(p)));
    const auto srcs = rng.sample_without_replacement(p, k);
    std::vector<char> active(static_cast<std::size_t>(p), 0);
    for (const auto s : srcs) active[static_cast<std::size_t>(s)] = 1;

    auto sched = std::make_shared<const HalvingSchedule>(
        HalvingSchedule::compute(active));
    auto seq = std::make_shared<const std::vector<Rank>>([p] {
      std::vector<Rank> v(static_cast<std::size_t>(p));
      std::iota(v.begin(), v.end(), 0);
      return v;
    }());

    // Randomized network parameters: timing varies, content must not.
    net::NetParams np;
    np.alpha_us = rng.next_double() * 20;
    np.per_hop_us = rng.next_double();
    np.bytes_per_us = 10 + rng.next_double() * 500;
    mp::CommParams cp;
    cp.send_overhead_us = rng.next_double() * 50;
    cp.recv_overhead_us = rng.next_double() * 50;
    mp::Runtime rt(std::make_shared<net::LinearArray>(p), np, cp,
                   net::RankMapping::identity(p));

    std::vector<mp::Payload> data(static_cast<std::size_t>(p));
    for (const auto s : srcs)
      data[static_cast<std::size_t>(s)] =
          mp::Payload::original(s, 64 + rng.next_below(4096));
    for (Rank r = 0; r < p; ++r)
      rt.spawn(r, run_halving(rt.comm(r), seq, r, sched,
                              data[static_cast<std::size_t>(r)], {}));
    rt.run();

    const auto want = interpret(*sched, active);
    for (int r = 0; r < p; ++r) {
      std::set<int> got;
      for (const mp::Chunk& c : data[static_cast<std::size_t>(r)].chunks())
        got.insert(c.source);
      ASSERT_EQ(got, want[static_cast<std::size_t>(r)])
          << "trial " << trial << " p=" << p << " k=" << k << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace spb::coll
