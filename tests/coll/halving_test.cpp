#include "coll/halving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"

namespace spb::coll {
namespace {

// Pure schedule-level interpreter: runs the schedule on sets of source ids
// and returns each position's final holdings.  This is the ground truth the
// runtime engine is tested against.
std::vector<std::set<int>> interpret(const HalvingSchedule& s,
                                     const std::vector<char>& active) {
  const int n = s.size();
  std::vector<std::set<int>> data(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    if (active[static_cast<std::size_t>(i)]) data[static_cast<std::size_t>(i)].insert(i);
  for (int iter = 0; iter < s.iterations(); ++iter) {
    // Sends ship start-of-iteration data.
    const std::vector<std::set<int>> snapshot = data;
    for (int pos = 0; pos < n; ++pos) {
      for (const Action& a : s.actions(iter, pos)) {
        if (a.type == Action::Type::kRecv) {
          const auto& incoming =
              snapshot[static_cast<std::size_t>(a.peer)];
          data[static_cast<std::size_t>(pos)].insert(incoming.begin(),
                                                     incoming.end());
        }
      }
    }
  }
  return data;
}

std::vector<char> flags_from(int n, const std::vector<int>& sources) {
  std::vector<char> f(static_cast<std::size_t>(n), 0);
  for (const int s : sources) f[static_cast<std::size_t>(s)] = 1;
  return f;
}

TEST(Halving, IterationCountIsCeilLog2) {
  for (const int n : {1, 2, 3, 4, 5, 7, 8, 9, 100, 120, 128, 256}) {
    const auto s =
        HalvingSchedule::compute(std::vector<char>(static_cast<std::size_t>(n), 1));
    EXPECT_EQ(s.iterations(), n > 1 ? ilog2_ceil(n) : 0) << "n=" << n;
  }
}

TEST(Halving, FirstIterationPairsAcrossTheMiddle) {
  // n=8, all active: position i exchanges with i+4.
  const auto s = HalvingSchedule::compute(std::vector<char>(8, 1));
  for (int i = 0; i < 4; ++i) {
    const auto& acts = s.actions(0, i);
    ASSERT_EQ(acts.size(), 2u) << i;
    EXPECT_EQ(acts[0], (Action{Action::Type::kSend, i + 4}));
    EXPECT_EQ(acts[1], (Action{Action::Type::kRecv, i + 4}));
  }
}

TEST(Halving, OneSidedSendWhenPartnerEmpty) {
  // Only position 0 active on 4 positions: iteration 0 is a single send
  // 0 -> 2, no reverse traffic.
  const auto s = HalvingSchedule::compute(flags_from(4, {0}));
  EXPECT_EQ(s.actions(0, 0),
            (std::vector<Action>{{Action::Type::kSend, 2}}));
  EXPECT_EQ(s.actions(0, 2),
            (std::vector<Action>{{Action::Type::kRecv, 0}}));
  EXPECT_TRUE(s.actions(0, 1).empty());
  EXPECT_TRUE(s.actions(0, 3).empty());
}

TEST(Halving, SilentPairProducesNoTraffic) {
  const auto s = HalvingSchedule::compute(flags_from(8, {0}));
  // Pair (1, 5): both empty in iteration 0.
  EXPECT_TRUE(s.actions(0, 1).empty());
  EXPECT_TRUE(s.actions(0, 5).empty());
}

TEST(Halving, BroadcastCoverageAllSizesSingleSource) {
  // Every position ends with the source's data, for every n and source.
  for (int n = 1; n <= 40; ++n) {
    for (int src = 0; src < n; ++src) {
      const auto flags = flags_from(n, {src});
      const auto s = HalvingSchedule::compute(flags);
      const auto data = interpret(s, flags);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(data[static_cast<std::size_t>(i)],
                  (std::set<int>{src}))
            << "n=" << n << " src=" << src << " pos=" << i;
      }
    }
  }
}

TEST(Halving, AllgatherCoverageRandomPatterns) {
  // Property: for arbitrary activity patterns, every position ends with
  // the union of all initially-held ids.
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(64));
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    std::vector<std::int32_t> sources =
        rng.sample_without_replacement(n, k);
    const auto flags =
        flags_from(n, std::vector<int>(sources.begin(), sources.end()));
    const auto s = HalvingSchedule::compute(flags);
    const auto data = interpret(s, flags);
    const std::set<int> want(sources.begin(), sources.end());
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(data[static_cast<std::size_t>(i)], want)
          << "n=" << n << " k=" << k << " trial=" << trial << " pos=" << i;
  }
}

TEST(Halving, ActivityDoublesFromSingleSourceOnPow2) {
  const auto s = HalvingSchedule::compute(flags_from(64, {0}));
  for (int iter = 0; iter <= s.iterations(); ++iter)
    EXPECT_EQ(s.active_count_after(iter), 1 << iter);
}

TEST(Halving, ActivityNeverDecreases) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(120));
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto srcs = rng.sample_without_replacement(n, k);
    const auto s = HalvingSchedule::compute(
        flags_from(n, std::vector<int>(srcs.begin(), srcs.end())));
    for (int iter = 0; iter < s.iterations(); ++iter)
      EXPECT_LE(s.active_count_after(iter),
                s.active_count_after(iter + 1));
    EXPECT_EQ(s.active_count_after(s.iterations()), n);
  }
}

TEST(Halving, PerIterationActionCountIsBounded) {
  // Congestion O(1): even with the odd-segment fix-up no position handles
  // more than 4 actions (one exchange + one extra exchange-side) per
  // iteration.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(200));
    const auto s = HalvingSchedule::compute(
        std::vector<char>(static_cast<std::size_t>(n), 1));
    for (int iter = 0; iter < s.iterations(); ++iter)
      for (int pos = 0; pos < n; ++pos)
        EXPECT_LE(s.actions(iter, pos).size(), 4u)
            << "n=" << n << " iter=" << iter << " pos=" << pos;
  }
}

TEST(Halving, SendsPrecedeReceivesInActionLists) {
  const auto s = HalvingSchedule::compute(std::vector<char>(21, 1));
  for (int iter = 0; iter < s.iterations(); ++iter) {
    for (int pos = 0; pos < 21; ++pos) {
      bool seen_recv = false;
      for (const Action& a : s.actions(iter, pos)) {
        if (a.type == Action::Type::kRecv) seen_recv = true;
        if (a.type == Action::Type::kSend) {
          EXPECT_FALSE(seen_recv);
        }
      }
    }
  }
}

TEST(Halving, SendsAndReceivesMatchPairwise) {
  Rng rng(55);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(100));
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto srcs = rng.sample_without_replacement(n, k);
    const auto s = HalvingSchedule::compute(
        flags_from(n, std::vector<int>(srcs.begin(), srcs.end())));
    for (int iter = 0; iter < s.iterations(); ++iter) {
      std::multiset<std::pair<int, int>> sends;
      std::multiset<std::pair<int, int>> recvs;
      for (int pos = 0; pos < n; ++pos) {
        for (const Action& a : s.actions(iter, pos)) {
          if (a.type == Action::Type::kSend) {
            sends.insert({pos, a.peer});
          } else {
            recvs.insert({a.peer, pos});
          }
        }
      }
      EXPECT_EQ(sends, recvs) << "n=" << n << " iter=" << iter;
    }
  }
}

TEST(Halving, PowerOfTwoAllActiveMovesNoDuplicates) {
  // For 2^k segments with everyone active, the interpreter must never see
  // a position receive an id it already holds (zero redundant traffic).
  for (const int n : {2, 4, 8, 16, 32, 64}) {
    const auto flags = std::vector<char>(static_cast<std::size_t>(n), 1);
    const auto s = HalvingSchedule::compute(flags);
    std::vector<std::set<int>> data(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) data[static_cast<std::size_t>(i)].insert(i);
    for (int iter = 0; iter < s.iterations(); ++iter) {
      const auto snapshot = data;
      for (int pos = 0; pos < n; ++pos) {
        for (const Action& a : s.actions(iter, pos)) {
          if (a.type != Action::Type::kRecv) continue;
          for (const int id : snapshot[static_cast<std::size_t>(a.peer)]) {
            EXPECT_EQ(data[static_cast<std::size_t>(pos)].count(id), 0u)
                << "n=" << n << " duplicate id " << id << " at " << pos;
            data[static_cast<std::size_t>(pos)].insert(id);
          }
        }
      }
    }
  }
}

TEST(Halving, SpreadOrderIsAPermutation) {
  for (const int n : {1, 2, 3, 7, 10, 16, 100, 121}) {
    auto order = HalvingSchedule::spread_order(n);
    ASSERT_EQ(static_cast<int>(order.size()), n);
    EXPECT_EQ(order[0], 0);
    std::sort(order.begin(), order.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Halving, SpreadOrderFirstStepsOnTen) {
  // Spreading from position 0 on 10 positions reaches 5 first (the
  // cross-middle partner), then the midpoints of both halves.
  const auto order = HalvingSchedule::spread_order(10);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 5);
  // Note: {0, 5} as an *initial placement* would pair in iteration 0 and
  // not double — the paper's R(20)-on-10x10 observation; that is why
  // ideal placements are searched (dist::ideal_positions), not read off
  // this order.
  std::vector<char> both(10, 0);
  both[0] = both[5] = 1;
  const auto s = HalvingSchedule::compute(both);
  EXPECT_EQ(s.active_count_after(1), 2);  // merged, no growth
}

TEST(Halving, ActivityProfileMatchesSchedule) {
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(100));
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto srcs = rng.sample_without_replacement(n, k);
    const auto flags =
        flags_from(n, std::vector<int>(srcs.begin(), srcs.end()));
    const auto s = HalvingSchedule::compute(flags);
    const auto profile = HalvingSchedule::activity_profile(flags);
    ASSERT_EQ(static_cast<int>(profile.size()), s.iterations() + 1);
    for (int iter = 0; iter <= s.iterations(); ++iter)
      EXPECT_EQ(profile[static_cast<std::size_t>(iter)],
                s.active_count_after(iter))
          << "n=" << n << " k=" << k << " iter=" << iter;
  }
}

TEST(Halving, EmptyActivityYieldsSilentSchedule) {
  const auto s = HalvingSchedule::compute(std::vector<char>(16, 0));
  for (int iter = 0; iter < s.iterations(); ++iter)
    for (int pos = 0; pos < 16; ++pos)
      EXPECT_TRUE(s.actions(iter, pos).empty());
}

TEST(Halving, RejectsEmptyInput) {
  EXPECT_THROW(HalvingSchedule::compute({}), CheckError);
  EXPECT_THROW(HalvingSchedule::spread_order(0), CheckError);
}

}  // namespace
}  // namespace spb::coll
