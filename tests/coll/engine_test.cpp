#include "coll/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "coll/halving.h"
#include "net/topology.h"

namespace spb::coll {
namespace {

mp::Runtime make_runtime(int p) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 100.0;
  mp::CommParams cp;
  cp.send_overhead_us = 5.0;
  cp.recv_overhead_us = 5.0;
  cp.combine_fixed_us = 1.0;
  cp.combine_per_byte_us = 0.01;
  return mp::Runtime(std::make_shared<net::LinearArray>(p), np, cp,
                     net::RankMapping::identity(p));
}

struct HalvingRun {
  SimTime makespan = 0;
  std::vector<mp::Payload> data;
  mp::RunMetrics metrics;
};

HalvingRun run_halving_all(int p, const std::vector<Rank>& sources,
                           Bytes bytes, HalvingOptions opts = {}) {
  mp::Runtime rt = make_runtime(p);
  auto seq = std::make_shared<const std::vector<Rank>>([p] {
    std::vector<Rank> v(static_cast<std::size_t>(p));
    std::iota(v.begin(), v.end(), 0);
    return v;
  }());
  std::vector<char> active(static_cast<std::size_t>(p), 0);
  for (const Rank s : sources) active[static_cast<std::size_t>(s)] = 1;
  auto sched = std::make_shared<const HalvingSchedule>(
      HalvingSchedule::compute(active));

  HalvingRun result;
  result.data.assign(static_cast<std::size_t>(p), mp::Payload{});
  for (const Rank s : sources)
    result.data[static_cast<std::size_t>(s)] = mp::Payload::original(s, bytes);
  for (Rank r = 0; r < p; ++r) {
    rt.spawn(r, run_halving(rt.comm(r), seq, r, sched,
                            result.data[static_cast<std::size_t>(r)], opts));
  }
  const mp::RunOutcome out = rt.run();
  result.makespan = out.makespan_us;
  result.metrics = out.metrics;
  return result;
}

mp::Payload expected(const std::vector<Rank>& sources, Bytes bytes) {
  std::vector<mp::Chunk> chunks;
  for (const Rank s : sources) chunks.push_back({s, bytes});
  return mp::Payload::of(std::move(chunks));
}

TEST(Engine, BroadcastsOneSource) {
  const auto r = run_halving_all(8, {3}, 100);
  for (const auto& d : r.data) EXPECT_EQ(d, expected({3}, 100));
}

TEST(Engine, AllgathersManySourcesOddSize) {
  const std::vector<Rank> sources = {0, 2, 5, 6, 10};
  const auto r = run_halving_all(11, sources, 64);
  for (const auto& d : r.data) EXPECT_EQ(d, expected(sources, 64));
}

TEST(Engine, SweepSizesAndSourceCounts) {
  for (const int p : {1, 2, 3, 5, 8, 13, 16, 21}) {
    for (int s = 1; s <= p; s += (p > 6 ? 3 : 1)) {
      std::vector<Rank> sources;
      for (int j = 0; j < s; ++j)
        sources.push_back(static_cast<Rank>(j * p / s));
      const auto r = run_halving_all(p, sources, 32);
      for (Rank rank = 0; rank < p; ++rank)
        ASSERT_EQ(r.data[static_cast<std::size_t>(rank)],
                  expected(sources, 32))
            << "p=" << p << " s=" << s << " rank=" << rank;
    }
  }
}

TEST(Engine, MarksOneIterationPerHalvingStep) {
  const auto r = run_halving_all(16, {0, 7}, 16);
  EXPECT_EQ(r.metrics.iterations, 4u);  // ceil(log2 16)
}

TEST(Engine, CombineCostSlowsTheRun) {
  const auto with = run_halving_all(16, {0, 3, 9}, 4096,
                                    {.mark_iterations = true,
                                     .combine_cost = true});
  const auto without = run_halving_all(16, {0, 3, 9}, 4096,
                                       {.mark_iterations = true,
                                        .combine_cost = false});
  EXPECT_GT(with.makespan, without.makespan);
  // Both still correct.
  EXPECT_EQ(with.data[5], without.data[5]);
}

TEST(Engine, SingleRankIsANoop) {
  const auto r = run_halving_all(1, {0}, 128);
  EXPECT_EQ(r.data[0], expected({0}, 128));
  EXPECT_EQ(r.metrics.total_sends, 0u);
}

TEST(Engine, PositionRankMismatchRejected) {
  mp::Runtime rt = make_runtime(2);
  auto seq = std::make_shared<const std::vector<Rank>>(
      std::vector<Rank>{0, 1});
  auto sched = std::make_shared<const HalvingSchedule>(
      HalvingSchedule::compute({1, 0}));
  mp::Payload d0 = mp::Payload::original(0, 8);
  mp::Payload d1;
  // Rank 0 claims position 1: the program's precondition check fires when
  // the (lazy) coroutine first runs, surfacing from run().
  rt.spawn(0, run_halving(rt.comm(0), seq, 1, sched, d0, {}));
  rt.spawn(1, run_halving(rt.comm(1), seq, 1, sched, d1, {}));
  EXPECT_THROW(rt.run(), CheckError);
}

}  // namespace
}  // namespace spb::coll
