// Tests for the remaining collectives: gather-to-root, the pipelined
// broadcast (trees + segmentation), and the dissemination barrier.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "coll/barrier.h"
#include "coll/gather.h"
#include "coll/pipeline.h"
#include "common/check.h"
#include "net/topology.h"

namespace spb::coll {
namespace {

mp::Runtime make_runtime(int p) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 100.0;
  mp::CommParams cp;
  cp.send_overhead_us = 5.0;
  cp.recv_overhead_us = 5.0;
  return mp::Runtime(std::make_shared<net::LinearArray>(p), np, cp,
                     net::RankMapping::identity(p));
}

std::shared_ptr<const std::vector<Rank>> identity_seq(int p) {
  std::vector<Rank> v(static_cast<std::size_t>(p));
  std::iota(v.begin(), v.end(), 0);
  return std::make_shared<const std::vector<Rank>>(std::move(v));
}

// ----------------------------------------------------------------- gather

TEST(Gather, RootCollectsAllSenders) {
  const int p = 7;
  mp::Runtime rt = make_runtime(p);
  auto senders = std::make_shared<const std::vector<Rank>>(
      std::vector<Rank>{1, 3, 6});
  std::vector<mp::Payload> data(static_cast<std::size_t>(p));
  for (const Rank s : *senders)
    data[static_cast<std::size_t>(s)] = mp::Payload::original(s, 100);
  for (Rank r = 0; r < p; ++r)
    rt.spawn(r, gather_to_root(rt.comm(r), 0, senders,
                               data[static_cast<std::size_t>(r)]));
  rt.run();
  EXPECT_EQ(data[0], mp::Payload::of({{1, 100}, {3, 100}, {6, 100}}));
  // Senders keep their originals.
  EXPECT_EQ(data[3], mp::Payload::original(3, 100));
  // Bystanders stay empty.
  EXPECT_TRUE(data[2].empty());
}

TEST(Gather, RootMayItselfBeASender) {
  const int p = 4;
  mp::Runtime rt = make_runtime(p);
  auto senders = std::make_shared<const std::vector<Rank>>(
      std::vector<Rank>{0, 2});
  std::vector<mp::Payload> data(static_cast<std::size_t>(p));
  data[0] = mp::Payload::original(0, 10);
  data[2] = mp::Payload::original(2, 10);
  for (Rank r = 0; r < p; ++r)
    rt.spawn(r, gather_to_root(rt.comm(r), 0, senders,
                               data[static_cast<std::size_t>(r)]));
  rt.run();
  EXPECT_EQ(data[0], mp::Payload::of({{0, 10}, {2, 10}}));
}

TEST(Gather, RootEjectionIsTheHotSpot) {
  // s senders serialize on the root's ejection channel: the gather of 2k
  // bytes x 8 senders must take at least 8 serializations — the 2-Step
  // congestion the paper measures.
  const int p = 9;
  mp::Runtime rt = make_runtime(p);
  std::vector<Rank> snd(8);
  std::iota(snd.begin(), snd.end(), 1);
  auto senders = std::make_shared<const std::vector<Rank>>(std::move(snd));
  std::vector<mp::Payload> data(static_cast<std::size_t>(p));
  for (const Rank s : *senders)
    data[static_cast<std::size_t>(s)] = mp::Payload::original(s, 2000);
  for (Rank r = 0; r < p; ++r)
    rt.spawn(r, gather_to_root(rt.comm(r), 0, senders,
                               data[static_cast<std::size_t>(r)]));
  const auto out = rt.run();
  // wire ~2040 bytes -> 20.4us serialization each, 8 of them back to back.
  EXPECT_GE(out.makespan_us, 8 * 20.4);
}

// --------------------------------------------------------------- pipeline

TEST(BcastTree, FromHalvingStructure) {
  const BcastTree t = BcastTree::from_halving(8, 0);
  EXPECT_EQ(t.root, 0);
  EXPECT_EQ(t.parent[0], -1);
  // Root sends to 4, then 2, then 1 (halving order, big subtree first).
  EXPECT_EQ(t.children[0], (std::vector<int>{4, 2, 1}));
  for (int pos = 1; pos < 8; ++pos) EXPECT_GE(t.parent[pos], 0);
}

TEST(BcastTree, BinaryHasBoundedFanout) {
  for (const int n : {1, 2, 5, 16, 100}) {
    const BcastTree t = BcastTree::binary(n, 0);
    int reachable = 0;
    for (int pos = 0; pos < n; ++pos) {
      EXPECT_LE(t.children[static_cast<std::size_t>(pos)].size(), 2u);
      if (pos == t.root) {
        EXPECT_EQ(t.parent[static_cast<std::size_t>(pos)], -1);
      } else {
        EXPECT_GE(t.parent[static_cast<std::size_t>(pos)], 0);
      }
      ++reachable;
    }
    EXPECT_EQ(reachable, n);
  }
}

TEST(BcastTree, EveryTreeCoversAllPositions) {
  // Walk parents to the root from every node: no cycles, full coverage.
  for (const int n : {3, 10, 31}) {
    for (const BcastTree& t :
         {BcastTree::from_halving(n, 0), BcastTree::binary(n, 0)}) {
      for (int pos = 0; pos < n; ++pos) {
        int at = pos;
        int steps = 0;
        while (at != t.root) {
          at = t.parent[static_cast<std::size_t>(at)];
          ASSERT_GE(at, 0);
          ASSERT_LE(++steps, n);
        }
      }
    }
  }
}

struct PipelineRun {
  SimTime makespan = 0;
  std::vector<mp::Payload> data;
  std::uint64_t sends = 0;
};

PipelineRun run_pipeline(int p, Bytes payload_bytes, Bytes segment,
                         const BcastTree& tree) {
  mp::Runtime rt = make_runtime(p);
  auto seq = identity_seq(p);
  auto tree_ptr = std::make_shared<const BcastTree>(tree);
  PipelineRun result;
  result.data.assign(static_cast<std::size_t>(p), mp::Payload{});
  result.data[0] = mp::Payload::original(0, payload_bytes);
  const Bytes total_wire = payload_bytes + 40;  // header + one chunk
  for (Rank r = 0; r < p; ++r)
    rt.spawn(r, pipelined_bcast(rt.comm(r), seq, r, tree_ptr,
                                result.data[static_cast<std::size_t>(r)],
                                total_wire, segment));
  const auto out = rt.run();
  result.makespan = out.makespan_us;
  result.sends = out.metrics.total_sends;
  return result;
}

TEST(PipelinedBcast, DeliversPayloadToAllRanks) {
  const auto r = run_pipeline(13, 5000, 1024, BcastTree::binary(13, 0));
  for (const auto& d : r.data)
    EXPECT_EQ(d, mp::Payload::original(0, 5000));
}

TEST(PipelinedBcast, SegmentCountDrivesMessageCount) {
  // 5040 wire bytes in 1024-byte segments = 5 segments; 12 tree edges.
  const auto r = run_pipeline(13, 5000, 1024, BcastTree::binary(13, 0));
  EXPECT_EQ(r.sends, 5u * 12u);
}

TEST(PipelinedBcast, PipeliningBeatsStoreAndForwardForBigMessages) {
  // One segment = store-and-forward through the tree; fine segments
  // overlap transfers and must finish sooner for a large message.
  const Bytes big = 200000;
  const auto coarse =
      run_pipeline(16, big, big + 40, BcastTree::binary(16, 0));
  const auto fine = run_pipeline(16, big, 8192, BcastTree::binary(16, 0));
  EXPECT_LT(fine.makespan, coarse.makespan * 0.7)
      << "fine=" << fine.makespan << " coarse=" << coarse.makespan;
}

TEST(PipelinedBcast, WorksOnHalvingTreeToo) {
  const auto r = run_pipeline(9, 3000, 512, BcastTree::from_halving(9, 0));
  for (const auto& d : r.data)
    EXPECT_EQ(d, mp::Payload::original(0, 3000));
}

TEST(PipelinedBcast, SingleRankNoop) {
  const auto r = run_pipeline(1, 100, 64, BcastTree::binary(1, 0));
  EXPECT_EQ(r.sends, 0u);
  EXPECT_EQ(r.data[0], mp::Payload::original(0, 100));
}

// ---------------------------------------------------------------- barrier

sim::Task compute_then_barrier(mp::Comm& comm, double pre, SimTime& done) {
  co_await comm.compute(pre);
  co_await dissemination_barrier(comm);
  done = comm.now();
}

TEST(Barrier, NobodyLeavesBeforeTheLastEnters) {
  const int p = 8;
  mp::Runtime rt = make_runtime(p);
  std::vector<SimTime> done(static_cast<std::size_t>(p), -1);
  for (Rank r = 0; r < p; ++r) {
    const double pre = r == 5 ? 500.0 : 1.0;  // rank 5 is late
    rt.spawn(r, compute_then_barrier(rt.comm(r), pre,
                                     done[static_cast<std::size_t>(r)]));
  }
  rt.run();
  for (Rank r = 0; r < p; ++r)
    EXPECT_GE(done[static_cast<std::size_t>(r)], 500.0) << "rank " << r;
}

TEST(Barrier, WorksForNonPowerOfTwoAndSingle) {
  for (const int p : {1, 3, 7}) {
    mp::Runtime rt = make_runtime(p);
    std::vector<SimTime> done(static_cast<std::size_t>(p), -1);
    for (Rank r = 0; r < p; ++r)
      rt.spawn(r, compute_then_barrier(rt.comm(r), 1.0,
                                       done[static_cast<std::size_t>(r)]));
    rt.run();
    for (Rank r = 0; r < p; ++r)
      EXPECT_GE(done[static_cast<std::size_t>(r)], 1.0);
  }
}

}  // namespace
}  // namespace spb::coll
