#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace spb::net {
namespace {

TEST(LinearArray, Basics) {
  LinearArray a(10);
  EXPECT_EQ(a.node_count(), 10);
  EXPECT_EQ(a.slots_per_node(), 2);
  EXPECT_EQ(a.hops(0, 9), 9);
  EXPECT_EQ(a.hops(4, 4), 0);
  EXPECT_TRUE(a.route(3, 3).empty());
  EXPECT_EQ(a.route(2, 5).size(), 3u);
  EXPECT_EQ(a.route(5, 2).size(), 3u);
}

TEST(LinearArray, RouteUsesDirectedLinks) {
  LinearArray a(4);
  // 1 -> 3 goes through +x slots of nodes 1 and 2.
  EXPECT_EQ(a.route(1, 3), (std::vector<LinkId>{1 * 2 + 0, 2 * 2 + 0}));
  // 3 -> 1 through -x slots of 3 and 2: disjoint from the forward route.
  EXPECT_EQ(a.route(3, 1), (std::vector<LinkId>{3 * 2 + 1, 2 * 2 + 1}));
}

TEST(Mesh2D, CoordinatesAreRowMajor) {
  Mesh2D m(10, 10);
  EXPECT_EQ(m.node_count(), 100);
  // Node 37 sits at row 3, column 7.
  EXPECT_EQ(m.coord(37).y(), 3);
  EXPECT_EQ(m.coord(37).x(), 7);
  EXPECT_EQ(m.node_at({7, 3, 0}), 37);
  for (NodeId n = 0; n < m.node_count(); ++n)
    EXPECT_EQ(m.node_at(m.coord(n)), n);
}

TEST(Mesh2D, HopsIsManhattan) {
  Mesh2D m(6, 8);
  EXPECT_EQ(m.hops(0, m.node_count() - 1), 5 + 7);
  EXPECT_EQ(m.hops(10, 10), 0);
  for (NodeId a = 0; a < m.node_count(); a += 7)
    for (NodeId b = 0; b < m.node_count(); b += 5)
      EXPECT_EQ(static_cast<int>(m.route(a, b).size()), m.hops(a, b));
}

TEST(Mesh2D, RoutesAreXFirst) {
  Mesh2D m(4, 4);
  // (0,0) -> (3,3): first 3 +x links along row 0, then 3 +y links down
  // column 3.
  const auto path = m.route(0, 15);
  ASSERT_EQ(path.size(), 6u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(path[static_cast<std::size_t>(i)] % 4, 0) << "expected +x";
  for (int i = 3; i < 6; ++i)
    EXPECT_EQ(path[static_cast<std::size_t>(i)] % 4, 2) << "expected +y";
}

TEST(Mesh2D, OppositeRoutesShareNoDirectedLinks) {
  Mesh2D m(5, 7);
  const auto fwd = m.route(2, 32);
  const auto back = m.route(32, 2);
  const std::set<LinkId> fwd_set(fwd.begin(), fwd.end());
  for (const LinkId l : back) EXPECT_EQ(fwd_set.count(l), 0u);
}

TEST(Torus3D, CoordinateRoundTrip) {
  Torus3D t(8, 8, 8);
  EXPECT_EQ(t.node_count(), 512);
  for (NodeId n = 0; n < t.node_count(); n += 13)
    EXPECT_EQ(t.node_at(t.coord(n)), n);
}

TEST(Torus3D, WraparoundShortensRoutes) {
  Torus3D t(8, 1, 1);
  // 0 -> 7 on a ring of 8: one -x hop through the wraparound, not 7 +x.
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.route(0, 7).size(), 1u);
  // Distance 4 is a tie; the route must still have 4 hops.
  EXPECT_EQ(t.hops(0, 4), 4);
}

TEST(Torus3D, DiameterIsHalfDims) {
  Torus3D t(8, 8, 8);
  int max_hops = 0;
  for (NodeId b = 0; b < t.node_count(); ++b)
    max_hops = std::max(max_hops, t.hops(0, b));
  EXPECT_EQ(max_hops, 4 + 4 + 4);
}

TEST(Torus3D, RouteLengthMatchesHopsEverywhere) {
  Torus3D t(4, 3, 2);
  for (NodeId a = 0; a < t.node_count(); ++a)
    for (NodeId b = 0; b < t.node_count(); ++b)
      EXPECT_EQ(static_cast<int>(t.route(a, b).size()), t.hops(a, b))
          << a << "->" << b;
}

TEST(Topology, LinkIdsStayInBounds) {
  Torus3D t(4, 3, 2);
  for (NodeId a = 0; a < t.node_count(); ++a) {
    for (NodeId b = 0; b < t.node_count(); ++b) {
      for (const LinkId l : t.route(a, b)) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, t.link_space());
      }
    }
  }
}

TEST(Topology, DescribeLink) {
  Mesh2D m(3, 3);
  // Node 4 = (1,1); slot 0 = +x.
  EXPECT_EQ(m.describe_link(4 * 4 + 0), "link(1,1,0)+x");
  EXPECT_THROW(m.describe_link(-1), CheckError);
  EXPECT_THROW(m.describe_link(m.link_space()), CheckError);
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(LinearArray(0), CheckError);
  EXPECT_THROW(Mesh2D(0, 5), CheckError);
  EXPECT_THROW(Torus3D(2, 0, 2), CheckError);
  EXPECT_THROW(TorusND({}), CheckError);
  EXPECT_THROW(TorusND({2, -1}), CheckError);
  EXPECT_THROW(TorusND({2, 2, 2, 2, 2, 2, 2, 2, 2}), CheckError);
  EXPECT_THROW(Cluster(0, 4), CheckError);
  EXPECT_THROW(Cluster(4, 4, /*mesh_bw_scale=*/0.0), CheckError);
  Mesh2D m(2, 2);
  EXPECT_THROW(m.route(0, 4), CheckError);
  EXPECT_THROW(m.coord(-1), CheckError);
}

TEST(TorusND, MatchesTorus3DExactly) {
  // Torus3D is TorusND({dx,dy,dz}); routes, ids and names must line up so
  // T3D machine behaviour is unchanged by the generalization.
  const Torus3D t3(4, 3, 2);
  const TorusND tn({4, 3, 2});
  ASSERT_EQ(t3.node_count(), tn.node_count());
  for (NodeId a = 0; a < tn.node_count(); ++a) {
    EXPECT_EQ(t3.coord(a), tn.coord(a));
    for (NodeId b = 0; b < tn.node_count(); ++b) {
      EXPECT_EQ(t3.route(a, b), tn.route(a, b));
      EXPECT_EQ(t3.alt_route(a, b), tn.alt_route(a, b));
      EXPECT_EQ(t3.hops(a, b), tn.hops(a, b));
    }
  }
}

TEST(TorusND, DescribeLinkLabelsHighDimensions) {
  const TorusND t({2, 2, 2, 2});
  EXPECT_EQ(t.slots_per_node(), 8);
  // Node 0, +dim 3 and -dim 3.
  EXPECT_EQ(t.describe_link(6), "link(0,0,0,0)+d3");
  EXPECT_EQ(t.describe_link(7), "link(0,0,0,0)-d3");
  const Torus3D t3(2, 2, 2);
  EXPECT_EQ(t3.describe_link(0), "link(0,0,0)+x");
}

TEST(Cluster, CoordinateRoundTripAndHops) {
  const Cluster c(6, 4);  // 6 nodes laid out 2x3, 4 cores each
  EXPECT_EQ(c.node_count(), 24);
  EXPECT_EQ(c.slots_per_node(), 6);
  EXPECT_EQ(c.nodes(), 6);
  EXPECT_EQ(c.cores(), 4);
  for (NodeId n = 0; n < c.node_count(); ++n)
    EXPECT_EQ(c.node_at(c.coord(n)), n);
  EXPECT_EQ(c.hops(0, 0), 0);
  EXPECT_EQ(c.hops(0, 3), 2);       // same node: inject + eject
  EXPECT_EQ(c.hops(0, 4), 3);       // adjacent node: + one mesh hop
  EXPECT_EQ(c.hops(0, 23), 2 + 3);  // corner to corner of the 2x3 mesh
}

TEST(Cluster, IntraNodeRoutesSkipTheMesh) {
  const Cluster c(4, 4);
  // Core 1 -> core 3 of node 0: inject at 1, eject at 3, nothing else.
  EXPECT_EQ(c.route(1, 3), (std::vector<LinkId>{1 * 6 + 0, 3 * 6 + 1}));
  // Inter-node routes cross mesh channels owned by core 0 of each node.
  const auto path = c.route(1, 7);  // node 0 -> node 1
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 1 * 6 + 0);
  EXPECT_EQ(path[1], 0 * 6 + 2);  // node 0 base core, +x
  EXPECT_EQ(path[2], 7 * 6 + 1);
  // Route and alt_route agree on hop count.
  for (NodeId a = 0; a < c.node_count(); a += 3)
    for (NodeId b = 0; b < c.node_count(); b += 5) {
      EXPECT_EQ(static_cast<int>(c.route(a, b).size()), c.hops(a, b));
      EXPECT_EQ(static_cast<int>(c.alt_route(a, b).size()), c.hops(a, b));
    }
}

TEST(Cluster, MeshLinksRunSlower) {
  const Cluster c(4, 2, /*mesh_bw_scale=*/0.25);
  EXPECT_DOUBLE_EQ(c.link_bandwidth_scale(0), 1.0);   // crossbar inject
  EXPECT_DOUBLE_EQ(c.link_bandwidth_scale(1), 1.0);   // crossbar eject
  EXPECT_DOUBLE_EQ(c.link_bandwidth_scale(2), 0.25);  // mesh +x
  EXPECT_EQ(c.describe_link(0), "xbar(n0.c0)in");
  EXPECT_EQ(c.describe_link(2), "node(0,0)+x");
}

}  // namespace
}  // namespace spb::net
