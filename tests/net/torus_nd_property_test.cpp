// Property tests for the k-ary n-cube family: exhaustive over small shapes
// and seeded-random over large ones, the dimension-ordered shortest-wrap
// router must produce routes of exactly hops(a,b) links, every LinkId must
// stay inside link_space(), coordinates must round-trip, and no
// per-dimension move may exceed half the dimension (shortest wrap).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"

namespace spb::net {
namespace {

void check_pair(const TorusND& t, NodeId a, NodeId b) {
  const Coord ca = t.coord(a);
  const Coord cb = t.coord(b);
  const std::vector<LinkId> primary = t.route(a, b);
  const std::vector<LinkId> alt = t.alt_route(a, b);
  for (const std::vector<LinkId>* path : {&primary, &alt}) {
    ASSERT_EQ(static_cast<int>(path->size()), t.hops(a, b))
        << t.name() << " " << a << "->" << b;
    for (const LinkId l : *path) {
      ASSERT_GE(l, 0) << t.name();
      ASSERT_LT(l, t.link_space()) << t.name();
      ASSERT_LT(l % t.slots_per_node(), 2 * t.ndims())
          << t.name() << ": slot beyond the dimension channels";
    }
  }
  // Shortest wrap: the move along each dimension is at most half its size.
  for (int k = 0; k < t.ndims(); ++k) {
    const int d = TorusND::torus_delta(ca[k], cb[k], t.dim(k));
    EXPECT_LE(std::abs(d), t.dim(k) / 2) << t.name() << " dim " << k;
    if (2 * std::abs(d) == t.dim(k))
      EXPECT_GT(d, 0) << t.name() << ": ties must break positive";
  }
}

TEST(TorusNDProperty, ExhaustiveSmallShapes) {
  const std::vector<std::vector<int>> shapes = {
      {1},    {2},       {5},          {1, 4},      {2, 3},
      {4, 4}, {2, 3, 4}, {3, 3, 3},    {1, 2, 3},   {2, 2, 2, 2},
      {4, 1, 3, 2},      {2, 2, 2, 2, 2},
  };
  for (const auto& dims : shapes) {
    const TorusND t(dims);
    for (NodeId n = 0; n < t.node_count(); ++n)
      ASSERT_EQ(t.node_at(t.coord(n)), n) << t.name();
    for (NodeId a = 0; a < t.node_count(); ++a)
      for (NodeId b = 0; b < t.node_count(); ++b) check_pair(t, a, b);
  }
}

TEST(TorusNDProperty, SeededRandomLargeShapes) {
  const std::vector<std::vector<int>> shapes = {
      {8, 8, 16}, {4, 4, 4, 4}, {16, 16, 4}, {3, 5, 7, 2}, {32, 32},
  };
  std::uint64_t seed = 20260809;
  for (const auto& dims : shapes) {
    const TorusND t(dims);
    Rng rng(seed++);
    const auto n = static_cast<std::uint64_t>(t.node_count());
    for (int k = 0; k < 500; ++k) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      ASSERT_EQ(t.node_at(t.coord(a)), a) << t.name();
      check_pair(t, a, b);
    }
  }
}

TEST(TorusNDProperty, RoutesNeverExceedTheDiameter) {
  const TorusND t({8, 8, 16});
  const int diameter = 8 / 2 + 8 / 2 + 16 / 2;
  Rng rng(7);
  const auto n = static_cast<std::uint64_t>(t.node_count());
  for (int k = 0; k < 500; ++k) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    const auto b = static_cast<NodeId>(rng.next_below(n));
    EXPECT_LE(t.hops(a, b), diameter);
  }
}

}  // namespace
}  // namespace spb::net
