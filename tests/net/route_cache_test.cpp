#include "net/route_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"

namespace spb::net {
namespace {

// A cached path must be the exact route() result for every pair — the
// cache is a pure memoization, so any divergence is a correctness bug in
// the arena bookkeeping, not a modelling choice.
void expect_all_pairs_match(const Topology& topo) {
  RouteCache cache(topo);
  const int n = topo.node_count();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const std::vector<LinkId> fresh = topo.route(a, b);
      const std::span<const LinkId> cached = cache.path(a, b);
      ASSERT_EQ(cached.size(), fresh.size()) << "pair " << a << "->" << b;
      for (std::size_t i = 0; i < fresh.size(); ++i)
        ASSERT_EQ(cached[i], fresh[i]) << "pair " << a << "->" << b
                                       << " hop " << i;
    }
  }
  // Second lookup of every pair must hit the cache, not recompute.
  const std::size_t pairs = cache.cached_pairs();
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b) (void)cache.path(a, b);
  EXPECT_EQ(cache.cached_pairs(), pairs);
}

TEST(RouteCache, Mesh2DAllPairs) { expect_all_pairs_match(Mesh2D(4, 6)); }

TEST(RouteCache, Torus3DAllPairs) { expect_all_pairs_match(Torus3D(3, 4, 2)); }

TEST(RouteCache, HypercubeAllPairs) { expect_all_pairs_match(Hypercube(5)); }

TEST(RouteCache, SlotTableActiveForModeledMachines) {
  const Torus3D t3d(8, 8, 8);
  RouteCache cache(t3d);
  EXPECT_TRUE(cache.caching());
  EXPECT_EQ(cache.cached_pairs(), 0u);
  (void)cache.path(0, 511);
  EXPECT_EQ(cache.cached_pairs(), 1u);
  (void)cache.path(0, 511);
  EXPECT_EQ(cache.cached_pairs(), 1u);  // hit, not a second computation
}

TEST(RouteCache, SelfRouteIsEmpty) {
  const Mesh2D mesh(3, 3);
  RouteCache cache(mesh);
  EXPECT_TRUE(cache.path(4, 4).empty());
  // An empty cached path must still count as cached (length 0, not the
  // "not computed" sentinel) — probe via the pair counter.
  const std::size_t pairs = cache.cached_pairs();
  (void)cache.path(4, 4);
  EXPECT_EQ(cache.cached_pairs(), pairs);
}

}  // namespace
}  // namespace spb::net
