// Link-usage probe: off by default (null pointer), and when installed its
// per-link accounting reconciles with the model's aggregate stats.
#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "net/topology.h"

namespace spb::net {
namespace {

NetParams test_params() {
  NetParams p;
  p.alpha_us = 10.0;
  p.per_hop_us = 1.0;
  p.bytes_per_us = 100.0;
  return p;
}

TEST(LinkProbe, OffByDefault) {
  NetworkModel net(std::make_shared<LinearArray>(4), test_params());
  EXPECT_EQ(net.usage_probe(), nullptr);
  net.reserve(0, 3, 1000, 0.0);
  EXPECT_EQ(net.usage_probe(), nullptr);
}

TEST(LinkProbe, BusyTimeMatchesAggregateStats) {
  auto topo = std::make_shared<LinearArray>(8);
  NetworkModel net(topo, test_params());
  LinkUsageProbe probe(topo->link_space());
  net.set_usage_probe(&probe);

  net.reserve(0, 4, 1000, 0.0);
  net.reserve(5, 2, 500, 3.0);
  net.reserve(7, 6, 2000, 1.0);

  const double probe_busy =
      std::accumulate(probe.busy_us.begin(), probe.busy_us.end(), 0.0);
  EXPECT_DOUBLE_EQ(probe_busy, net.stats().total_link_busy_us);

  // 0->4 crosses four forward links; each carries one reservation with the
  // full 10us serialization.
  std::uint64_t reservations = 0;
  for (const std::uint64_t r : probe.reservations) reservations += r;
  EXPECT_EQ(reservations, net.stats().total_hops);
}

TEST(LinkProbe, ContentionChargesQueuedTime) {
  auto topo = std::make_shared<LinearArray>(8);
  NetworkModel net(topo, test_params());
  LinkUsageProbe probe(topo->link_space());
  net.set_usage_probe(&probe);

  // 0->3 and 1->4 share links; the second transfer stalls behind the first
  // and must charge queue time to the contended links.
  net.reserve(0, 3, 1000, 0.0);
  const Transfer t2 = net.reserve(1, 4, 1000, 0.0);
  EXPECT_GT(t2.start, 0.0);

  const double queued =
      std::accumulate(probe.queued_us.begin(), probe.queued_us.end(), 0.0);
  EXPECT_GT(queued, 0.0);

  // Uncontended traffic on fresh links adds busy time but no queue time.
  const double queued_before = queued;
  net.reserve(7, 6, 100, 1000.0);
  const double queued_after =
      std::accumulate(probe.queued_us.begin(), probe.queued_us.end(), 0.0);
  EXPECT_DOUBLE_EQ(queued_after, queued_before);
}

TEST(LinkProbe, ClearingProbeStopsAccounting) {
  auto topo = std::make_shared<LinearArray>(4);
  NetworkModel net(topo, test_params());
  LinkUsageProbe probe(topo->link_space());
  net.set_usage_probe(&probe);
  net.reserve(0, 2, 1000, 0.0);
  const double busy =
      std::accumulate(probe.busy_us.begin(), probe.busy_us.end(), 0.0);
  EXPECT_GT(busy, 0.0);

  net.set_usage_probe(nullptr);
  net.reserve(0, 2, 1000, 100.0);
  const double busy_after =
      std::accumulate(probe.busy_us.begin(), probe.busy_us.end(), 0.0);
  EXPECT_DOUBLE_EQ(busy_after, busy);
}

}  // namespace
}  // namespace spb::net
