// Route-level properties common to every topology: a route must be a
// connected walk of directed links from source to destination, using only
// valid channel slots — this pins the LinkId encoding itself.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"

namespace spb::net {
namespace {

/// Recovers (node, slot) from a LinkId and steps to the neighbour the slot
/// points at, per the documented encodings.
NodeId step(const Topology& topo, LinkId link) {
  const int slots = topo.slots_per_node();
  const NodeId node = link / slots;
  const int dir = link % slots;
  const Coord c = topo.coord(node);
  if (const auto* mesh = dynamic_cast<const Mesh2D*>(&topo)) {
    Coord n = c;
    if (dir == 0) ++n.x();
    if (dir == 1) --n.x();
    if (dir == 2) ++n.y();
    if (dir == 3) --n.y();
    return mesh->node_at(n);
  }
  // Covers Torus3D too: slot 2k is +dim k, slot 2k+1 is -dim k.
  if (const auto* torus = dynamic_cast<const TorusND*>(&topo)) {
    Coord n = c;
    const int k = dir / 2;
    const int delta = dir % 2 == 0 ? 1 : -1;
    n[k] = (n[k] + delta + torus->dim(k)) % torus->dim(k);
    return torus->node_at(n);
  }
  if (dynamic_cast<const Hypercube*>(&topo) != nullptr) {
    return node ^ (NodeId{1} << dir);
  }
  if (dynamic_cast<const LinearArray*>(&topo) != nullptr) {
    return dir == 0 ? node + 1 : node - 1;
  }
  ADD_FAILURE() << "unknown topology " << topo.name();
  return kNoNode;
}

void check_routes(const Topology& topo, int samples, std::uint64_t seed) {
  Rng rng(seed);
  const int n = topo.node_count();
  for (int k = 0; k < samples; ++k) {
    const NodeId a = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const NodeId b = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto path = topo.route(a, b);
    NodeId at = a;
    for (const LinkId l : path) {
      ASSERT_GE(l, 0) << topo.name();
      ASSERT_LT(l, topo.link_space()) << topo.name();
      ASSERT_EQ(l / topo.slots_per_node(), at)
          << topo.name() << ": link does not start at the walk position";
      at = step(topo, l);
    }
    ASSERT_EQ(at, b) << topo.name() << " " << a << "->" << b;
    ASSERT_EQ(static_cast<int>(path.size()), topo.hops(a, b))
        << topo.name();
  }
}

TEST(RouteProperties, WalksAreConnectedEverywhere) {
  check_routes(Mesh2D(7, 11), 400, 1);
  check_routes(Mesh2D(7, 11, /*y_first=*/true), 400, 2);
  check_routes(Torus3D(8, 8, 8), 400, 3);
  check_routes(Torus3D(5, 3, 2), 400, 4);
  check_routes(Hypercube(7), 400, 5);
  check_routes(LinearArray(23), 400, 6);
  check_routes(TorusND({4, 4, 4, 4}), 400, 7);
  check_routes(TorusND({8, 8, 16}), 400, 8);
  check_routes(TorusND({5, 3, 2, 2, 3}), 400, 9);
  check_routes(TorusND({17}), 400, 10);
}

TEST(RouteProperties, TorusTieBreaksPositive) {
  // Distance exactly size/2: the route must deterministically take the
  // positive direction.
  const Torus3D t(8, 1, 1);
  const auto path = t.route(0, 4);
  ASSERT_EQ(path.size(), 4u);
  for (const LinkId l : path)
    EXPECT_EQ(l % 6, 0) << "expected +x on the tie";
  // And the reverse tie also goes positive from its own side.
  const auto back = t.route(4, 0);
  for (const LinkId l : back) EXPECT_EQ(l % 6, 0);
}

TEST(RouteProperties, YFirstMeshReversesDimensionOrder) {
  const Mesh2D xy(5, 5, false);
  const Mesh2D yx(5, 5, true);
  // (0,0) -> (4,4): XY starts east, YX starts south.
  EXPECT_EQ(xy.route(0, 24).front() % 4, 0);
  EXPECT_EQ(yx.route(0, 24).front() % 4, 2);
  // Same hop counts regardless of order.
  for (NodeId a = 0; a < 25; a += 3)
    for (NodeId b = 0; b < 25; b += 4)
      EXPECT_EQ(xy.hops(a, b), yx.hops(a, b));
}

}  // namespace
}  // namespace spb::net
