#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "net/topology.h"

namespace spb::net {
namespace {

NetParams test_params() {
  NetParams p;
  p.alpha_us = 10.0;
  p.per_hop_us = 1.0;
  p.bytes_per_us = 100.0;
  return p;
}

TEST(Network, UncontendedTransferTiming) {
  NetworkModel net(std::make_shared<LinearArray>(8), test_params());
  // 4 hops, 1000 bytes from ready time 5: start=5, serialize 10us.
  const Transfer t = net.reserve(0, 4, 1000, 5.0);
  EXPECT_EQ(t.hops, 4);
  EXPECT_DOUBLE_EQ(t.start, 5.0);
  EXPECT_DOUBLE_EQ(t.inject_done, 15.0);
  EXPECT_DOUBLE_EQ(t.arrive, 5.0 + 10.0 + 4.0 + 10.0);
  EXPECT_DOUBLE_EQ(net.uncontended_us(4, 1000), 24.0);
}

TEST(Network, SameSourceSerializesOnInjection) {
  NetworkModel net(std::make_shared<LinearArray>(8), test_params());
  const Transfer t1 = net.reserve(0, 7, 1000, 0.0);
  // A second transfer from node 0 (to a disjoint destination) must wait for
  // the injection channel.
  const Transfer t2 = net.reserve(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_GE(t2.start, t1.inject_done);
}

TEST(Network, SameDestinationSerializesOnEjection) {
  NetworkModel net(std::make_shared<Mesh2D>(4, 4), test_params());
  // Two senders target node 0 from link-disjoint directions; the ejection
  // channel is the only shared resource — the 2-Step hot spot in miniature.
  const Transfer t1 = net.reserve(1, 0, 2000, 0.0);
  const Transfer t2 = net.reserve(4, 0, 2000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_GE(t2.start, t1.start + 2000 / 100.0);
}

TEST(Network, SharedLinkSerializes) {
  NetworkModel net(std::make_shared<LinearArray>(8), test_params());
  // 0->3 and 1->4 share links (1->2, 2->3) and must serialize.
  const Transfer t1 = net.reserve(0, 3, 1000, 0.0);
  const Transfer t2 = net.reserve(1, 4, 1000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_GE(t2.start, 10.0);
}

TEST(Network, DisjointPathsRunConcurrently) {
  NetworkModel net(std::make_shared<LinearArray>(8), test_params());
  const Transfer t1 = net.reserve(0, 1, 1000, 0.0);
  const Transfer t2 = net.reserve(4, 5, 1000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_DOUBLE_EQ(t2.start, 0.0);
}

TEST(Network, OppositeDirectionsAreFullDuplex) {
  NetworkModel net(std::make_shared<LinearArray>(4), test_params());
  // The pairwise exchange of Br_Lin: both directions at once, no conflict.
  const Transfer t1 = net.reserve(0, 3, 5000, 0.0);
  const Transfer t2 = net.reserve(3, 0, 5000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_DOUBLE_EQ(t2.start, 0.0);
}

TEST(Network, MultipleInjectChannelsOverlap) {
  NetParams p = test_params();
  p.inject_channels = 2;
  NetworkModel net(std::make_shared<Mesh2D>(2, 4), p);
  // Two transfers from node 0 along link-disjoint routes (east vs south):
  // with two injection channels both start immediately.
  const Transfer east = net.reserve(0, 1, 1000, 0.0);
  const Transfer south = net.reserve(0, 4, 1000, 0.0);
  EXPECT_DOUBLE_EQ(east.start, 0.0);
  EXPECT_DOUBLE_EQ(south.start, 0.0);
}

TEST(Network, ContentionOffIgnoresSharing) {
  NetParams p = test_params();
  p.model_contention = false;
  NetworkModel net(std::make_shared<LinearArray>(8), p);
  const Transfer t1 = net.reserve(0, 3, 1000, 0.0);
  const Transfer t2 = net.reserve(0, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 0.0);
  EXPECT_DOUBLE_EQ(t2.start, 0.0);
  EXPECT_DOUBLE_EQ(t2.arrive, t1.arrive);
}

TEST(Network, StatsAccumulate) {
  NetworkModel net(std::make_shared<LinearArray>(8), test_params());
  net.reserve(0, 3, 1000, 0.0);
  net.reserve(0, 3, 1000, 0.0);
  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.transfers, 2u);
  EXPECT_EQ(s.total_hops, 6u);
  EXPECT_EQ(s.total_bytes, 2000u);
  // Second transfer stalled a full serialization behind the first.
  EXPECT_DOUBLE_EQ(s.total_stall_us, 10.0);
  // Each transfer occupied 3 links for 10us.
  EXPECT_DOUBLE_EQ(s.total_link_busy_us, 60.0);
  EXPECT_DOUBLE_EQ(s.max_link_busy_us, 20.0);
  EXPECT_DOUBLE_EQ(net.link_busy_us(0 * 2 + 0), 20.0);
}

TEST(Network, RejectsBadArguments) {
  NetworkModel net(std::make_shared<LinearArray>(4), test_params());
  EXPECT_THROW(net.reserve(1, 1, 100, 0.0), CheckError);   // self
  EXPECT_THROW(net.reserve(-1, 1, 100, 0.0), CheckError);  // out of range
  EXPECT_THROW(net.reserve(0, 4, 100, 0.0), CheckError);
  NetParams bad = test_params();
  bad.bytes_per_us = 0;
  EXPECT_THROW(NetworkModel(std::make_shared<LinearArray>(4), bad),
               CheckError);
}

}  // namespace
}  // namespace spb::net
