#include "net/mapping.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace spb::net {
namespace {

TEST(Mapping, IdentityMapsRankToSameNode) {
  const RankMapping m = RankMapping::identity(16);
  EXPECT_EQ(m.rank_count(), 16);
  for (Rank r = 0; r < 16; ++r) EXPECT_EQ(m.node_of(r), r);
}

TEST(Mapping, RandomIsInjectiveAndInRange) {
  const RankMapping m = RankMapping::random(128, 512, 7);
  EXPECT_EQ(m.rank_count(), 128);
  std::set<NodeId> seen;
  for (Rank r = 0; r < 128; ++r) {
    const NodeId n = m.node_of(r);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 512);
    EXPECT_TRUE(seen.insert(n).second);
  }
}

TEST(Mapping, RandomIsSeedDeterministic) {
  const RankMapping a = RankMapping::random(64, 512, 42);
  const RankMapping b = RankMapping::random(64, 512, 42);
  const RankMapping c = RankMapping::random(64, 512, 43);
  EXPECT_EQ(a.table(), b.table());
  EXPECT_NE(a.table(), c.table());
}

TEST(Mapping, RandomActuallyScatters) {
  // The T3D point: logical neighbours are not physical neighbours.  With
  // 128 ranks on 512 nodes, consecutive ranks mapped to consecutive nodes
  // should be rare.
  const RankMapping m = RankMapping::random(128, 512, 1);
  int adjacent = 0;
  for (Rank r = 0; r + 1 < 128; ++r)
    if (std::abs(m.node_of(r) - m.node_of(r + 1)) == 1) ++adjacent;
  EXPECT_LT(adjacent, 8);
}

TEST(Mapping, FullOccupancyRandomIsAPermutation) {
  const RankMapping m = RankMapping::random(32, 32, 5);
  std::set<NodeId> seen;
  for (Rank r = 0; r < 32; ++r) seen.insert(m.node_of(r));
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Mapping, FromTableValidates) {
  const RankMapping m = RankMapping::from_table({3, 1, 4});
  EXPECT_EQ(m.node_of(0), 3);
  EXPECT_EQ(m.node_of(2), 4);
  EXPECT_THROW(RankMapping::from_table({1, 1}), CheckError);   // duplicate
  EXPECT_THROW(RankMapping::from_table({0, -2}), CheckError);  // negative
  EXPECT_THROW(RankMapping::from_table({}), CheckError);       // empty
}

TEST(Mapping, RejectsBadSizes) {
  EXPECT_THROW(RankMapping::random(10, 5, 1), CheckError);
  EXPECT_THROW(RankMapping::identity(0), CheckError);
  const RankMapping m = RankMapping::identity(4);
  EXPECT_THROW(m.node_of(4), CheckError);
  EXPECT_THROW(m.node_of(-1), CheckError);
}

}  // namespace
}  // namespace spb::net
