// Route caching under fault plans: the cache must stay a pure memoization
// of route() across invalidations, degradation windows must flush it, and
// the degraded-link detour must actually move traffic off the bad link.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "fault/fault.h"
#include "net/network.h"
#include "net/route_cache.h"
#include "net/topology.h"

namespace spb::net {
namespace {

void expect_cache_matches_fresh(RouteCache& cache, const Topology& topo) {
  for (int a = 0; a < topo.node_count(); ++a)
    for (int b = 0; b < topo.node_count(); ++b) {
      const std::vector<LinkId> fresh = topo.route(a, b);
      const std::span<const LinkId> cached = cache.path(a, b);
      ASSERT_EQ(cached.size(), fresh.size()) << a << "->" << b;
      for (std::size_t i = 0; i < fresh.size(); ++i)
        ASSERT_EQ(cached[i], fresh[i]) << a << "->" << b << " hop " << i;
    }
}

TEST(RouteCacheInvalidate, RefillsCorrectlyAfterFlush) {
  const Mesh2D mesh(4, 5);
  RouteCache cache(mesh);
  expect_cache_matches_fresh(cache, mesh);
  EXPECT_GT(cache.cached_pairs(), 0u);
  cache.invalidate();
  EXPECT_EQ(cache.cached_pairs(), 0u);
  // Differential pass after the flush: every refilled path must again be
  // the exact route() result (a stale arena slot would diverge here).
  expect_cache_matches_fresh(cache, mesh);
  cache.invalidate();
  cache.invalidate();  // idempotent on an empty cache
  EXPECT_EQ(cache.cached_pairs(), 0u);
}

TEST(AltRoute, OppositeDimensionOrderOnTheMesh) {
  const Mesh2D mesh(4, 6);
  for (NodeId a = 0; a < mesh.node_count(); ++a)
    for (NodeId b = 0; b < mesh.node_count(); ++b) {
      const auto primary = mesh.route(a, b);
      const auto alt = mesh.alt_route(a, b);
      ASSERT_EQ(alt.size(), primary.size()) << a << "->" << b;
      const Coord ca = mesh.coord(a), cb = mesh.coord(b);
      if (ca.x() != cb.x() && ca.y() != cb.y()) {
        // Both dimensions move: YX and XY take different corners.
        EXPECT_NE(alt, primary) << a << "->" << b;
      } else {
        // Aligned pairs have a single dimension-ordered route.
        EXPECT_EQ(alt, primary) << a << "->" << b;
      }
    }
}

TEST(AltRoute, OppositeDimensionOrderOnTheTorus) {
  const Torus3D torus(3, 3, 2);
  int diverging = 0;
  for (NodeId a = 0; a < torus.node_count(); ++a)
    for (NodeId b = 0; b < torus.node_count(); ++b) {
      const auto primary = torus.route(a, b);
      const auto alt = torus.alt_route(a, b);
      ASSERT_EQ(alt.size(), primary.size()) << a << "->" << b;
      if (alt != primary) ++diverging;
    }
  EXPECT_GT(diverging, 0) << "ZYX order never differed from XYZ";
}

/// A 4x4 mesh model with the first hop of 0 -> 5 degraded; the YX
/// alternative avoids it.
struct DetourFixture {
  std::shared_ptr<const Mesh2D> mesh = std::make_shared<const Mesh2D>(4, 4);
  NodeId src = 0, dst = 5;  // (0,0) -> (1,1): XY and YX differ
  LinkId bad;

  fault::FaultPlanPtr plan(const char* spec_text) const {
    const fault::FaultSpec spec = fault::FaultSpec::parse(spec_text);
    return std::make_shared<const fault::FaultPlan>(fault::FaultPlan::for_links(
        spec, 1, {bad}, mesh->link_space(), mesh->node_count()));
  }

  DetourFixture() { bad = mesh->route(src, dst).front(); }
};

TEST(FaultedRouting, DetourBypassesTheDegradedLink) {
  DetourFixture fx;
  ASSERT_NE(fx.mesh->alt_route(fx.src, fx.dst).front(), fx.bad);

  NetworkModel model(fx.mesh, NetParams{});
  model.set_fault_plan(fx.plan("links=0.1x4"));
  const Transfer t = model.reserve(fx.src, fx.dst, 4096, 0.0);
  EXPECT_GT(t.arrive, 0.0);
  EXPECT_EQ(model.stats().detours, 1u);
  EXPECT_EQ(model.stats().degraded_transfers, 0u)
      << "the detour is clean, so no degraded serialization is paid";
  EXPECT_DOUBLE_EQ(model.link_busy_us(fx.bad), 0.0)
      << "traffic still crossed the degraded link";
}

TEST(FaultedRouting, NoDetourWhenTheAlternativeIsNoBetter) {
  // Degrade both corners: the alternative is as bad as the primary, so the
  // model keeps the primary and pays the degradation.
  DetourFixture fx;
  const LinkId alt_bad = fx.mesh->alt_route(fx.src, fx.dst).front();
  const fault::FaultSpec spec = fault::FaultSpec::parse("links=0.1x4");
  auto plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::for_links(spec, 1, {fx.bad, alt_bad},
                                  fx.mesh->link_space(),
                                  fx.mesh->node_count()));
  NetworkModel model(fx.mesh, NetParams{});
  model.set_fault_plan(plan);
  const Transfer slow = model.reserve(fx.src, fx.dst, 4096, 0.0);
  EXPECT_EQ(model.stats().detours, 0u);
  EXPECT_EQ(model.stats().degraded_transfers, 1u);
  EXPECT_GT(model.link_busy_us(fx.bad), 0.0);

  // And the degraded transfer really is slower than a healthy one.
  NetworkModel healthy(fx.mesh, NetParams{});
  const Transfer fast = healthy.reserve(fx.src, fx.dst, 4096, 0.0);
  EXPECT_GT(slow.arrive, fast.arrive);
}

TEST(FaultedRouting, WindowedPlanFlushesTheRouteCache) {
  DetourFixture fx;
  NetworkModel model(fx.mesh, NetParams{});
  model.set_fault_plan(fx.plan("links=0.1x4,window=1000"));

  // Window 0 (degraded): the transfer detours around the bad link.
  (void)model.reserve(fx.src, fx.dst, 1024, 10.0);
  EXPECT_EQ(model.stats().detours, 1u);

  // Window 1 (healthy): crossing the boundary must invalidate the cache,
  // and the primary route is used again.
  (void)model.reserve(fx.src, fx.dst, 1024, 1500.0);
  EXPECT_GE(model.stats().route_invalidations, 1u);
  EXPECT_EQ(model.stats().detours, 1u);
  EXPECT_GT(model.link_busy_us(fx.bad), 0.0)
      << "healthy window should use the primary route";

  // Differential check after the flush churn: the model's cache still
  // memoizes route() exactly for every pair.
  RouteCache& cache = const_cast<RouteCache&>(model.routes());
  expect_cache_matches_fresh(cache, *fx.mesh);
}

TEST(FaultedRouting, PlanForWrongLinkSpaceRejected) {
  DetourFixture fx;
  NetworkModel model(fx.mesh, NetParams{});
  const fault::FaultSpec spec = fault::FaultSpec::parse("links=0.5x2");
  // A plan built for a much larger machine names links outside this mesh.
  auto foreign = std::make_shared<const fault::FaultPlan>(
      spec, 1, /*link_space=*/100000, /*ranks=*/1024);
  EXPECT_THROW(model.set_fault_plan(foreign), CheckError);
}

}  // namespace
}  // namespace spb::net
