#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "net/topology.h"

namespace spb::net {
namespace {

TEST(Hypercube, Basics) {
  const Hypercube h(4);
  EXPECT_EQ(h.node_count(), 16);
  EXPECT_EQ(h.slots_per_node(), 4);
  EXPECT_EQ(h.link_space(), 64);
  EXPECT_EQ(h.name(), "hypercube 4d");
}

TEST(Hypercube, HopsIsHammingDistance) {
  const Hypercube h(5);
  EXPECT_EQ(h.hops(0, 0), 0);
  EXPECT_EQ(h.hops(0, 1), 1);
  EXPECT_EQ(h.hops(0, 0b10110), 3);
  EXPECT_EQ(h.hops(0b11111, 0), 5);
  for (NodeId a = 0; a < h.node_count(); a += 3)
    for (NodeId b = 0; b < h.node_count(); b += 5)
      EXPECT_EQ(static_cast<int>(h.route(a, b).size()), h.hops(a, b));
}

TEST(Hypercube, EcubeRouteFixesBitsLowFirst) {
  const Hypercube h(3);
  // 000 -> 101: dimension 0 first (000->001), then dimension 2 (001->101).
  const auto path = h.route(0, 0b101);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0 * 3 + 0);      // node 0, dim 0
  EXPECT_EQ(path[1], 0b001 * 3 + 2);  // node 1, dim 2
}

TEST(Hypercube, TopDimensionExchangeIsContentionFree) {
  // The Br_Lin first iteration: every i exchanges with i + p/2.  On the
  // hypercube each pair uses its own dimension-(d-1) links, all distinct.
  const Hypercube h(5);
  std::set<LinkId> used;
  for (NodeId i = 0; i < 16; ++i) {
    for (const LinkId l : h.route(i, i + 16)) EXPECT_TRUE(used.insert(l).second);
    for (const LinkId l : h.route(i + 16, i)) EXPECT_TRUE(used.insert(l).second);
  }
  EXPECT_EQ(used.size(), 32u);
}

TEST(Hypercube, DescribeLinkUsesDimensionLabels) {
  const Hypercube h(8);  // more than 6 slots per node
  EXPECT_EQ(h.describe_link(3 * 8 + 7), "link(3,0,0)dim7");
}

TEST(Hypercube, Validation) {
  EXPECT_THROW(Hypercube(0), CheckError);
  EXPECT_THROW(Hypercube(17), CheckError);
  const Hypercube h(2);
  EXPECT_THROW(h.route(0, 4), CheckError);
}

}  // namespace
}  // namespace spb::net
