// Determinism and thread-safety of the parallel sweep layer.
//
// The sweep runner claims work with an atomic cursor and writes results
// into index-addressed slots, so a parallel sweep must produce the same
// bytes as a serial one for any job count.  These tests run the real
// analyzer combos (full record + static checks per combination) across
// threads — under TSan they double as the data-race check for everything
// a combination touches (runtime, simulator, route cache, ideal-placement
// memo).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analyze/sweep.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "dist/ideal.h"
#include "machine/config.h"
#include "stop/algorithm.h"
#include "sweep_runner.h"

namespace spb {
namespace {

std::vector<analyze::SweepCombo> paragon4x4_grid() {
  std::vector<analyze::SweepCombo> grid;
  const machine::MachineConfig machine = machine::paragon(4, 4);
  for (const stop::AlgorithmPtr& alg : stop::all_algorithms())
    for (const dist::Kind kind : dist::all_kinds())
      grid.push_back({"paragon4x4", machine, alg, kind});
  return grid;
}

std::string sweep_text(const std::vector<analyze::SweepCombo>& grid,
                       int jobs, const analyze::SweepOptions& sopt = {}) {
  std::vector<analyze::ComboResult> results(grid.size());
  const bench::SweepRunner runner(jobs);
  runner.run(grid.size(), [&](std::size_t i) {
    results[i] = analyze::analyze_combo(grid[i], sopt);
  });
  std::string text;
  for (const analyze::ComboResult& r : results) text += r.text;
  return text;
}

TEST(ConcurrentSweep, ParallelByteIdenticalToSerial) {
  const std::vector<analyze::SweepCombo> grid = paragon4x4_grid();
  ASSERT_GT(grid.size(), 100u);
  const std::string serial = sweep_text(grid, 1);
  EXPECT_EQ(sweep_text(grid, 2), serial);
  EXPECT_EQ(sweep_text(grid, 7), serial);  // more jobs than a small grid slice
}

TEST(ConcurrentSweep, FaultedSweepByteIdenticalToSerial) {
  // Fault decisions are stateless hashes of (seed, identifiers), so a
  // faulted sweep must stay byte-identical across job counts — each combo
  // builds its own plan and no worker order can leak into the decisions.
  // Under TSan this also races the fault plan sharing inside one combo.
  const std::vector<analyze::SweepCombo> grid = paragon4x4_grid();
  analyze::SweepOptions sopt;
  sopt.faults =
      fault::FaultSpec::parse("drop=0.1,dup=0.05,links=0.25x4,straggle=1x3");
  sopt.fault_seed = 42;
  const std::string serial = sweep_text(grid, 1, sopt);
  EXPECT_NE(serial, sweep_text(grid, 1));  // the faults really did bite
  EXPECT_EQ(sweep_text(grid, 4, sopt), serial);
}

TEST(SweepRunner, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  const bench::SweepRunner runner(4);
  runner.run(n, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(SweepRunner, ZeroTasksIsANoop) {
  const bench::SweepRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "task invoked for empty range"; });
}

TEST(SweepRunner, PropagatesWorkerException) {
  const bench::SweepRunner runner(3);
  EXPECT_THROW(runner.run(100,
                          [](std::size_t i) {
                            if (i == 42)
                              throw std::runtime_error("combo 42 failed");
                          }),
               std::runtime_error);
}

TEST(SweepRunner, ClampsJobsToAtLeastOne) {
  EXPECT_GE(bench::SweepRunner(0).jobs(), 1);
  EXPECT_GE(bench::SweepRunner::hardware_jobs(), 1);
}

TEST(ConcurrentIdealCache, ManyThreadsSameAnswers) {
  // The ideal-placement memo is the one shared mutable structure the
  // parallel sweep exercises; hammer one (n, k) set from many threads and
  // compare every result against a single-threaded reference.
  const std::vector<std::pair<int, int>> queries = {
      {16, 4}, {16, 5}, {64, 7}, {64, 8}, {100, 30}, {100, 31}, {128, 9}};
  std::vector<std::vector<int>> reference;
  for (const auto& [n, k] : queries)
    reference.push_back(dist::ideal_positions(n, k));

  constexpr int kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        for (std::size_t q = 0; q < queries.size(); ++q) {
          const auto& [n, k] = queries[q];
          if (dist::ideal_positions(n, k) != reference[q]) ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace spb
