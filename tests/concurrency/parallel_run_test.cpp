// Byte-identical outcomes of the sharded conservative-window engine across
// worker-thread counts (see sim/sharded.h and mp::Runtime::enable_parallel).
//
// The engine's contract is that `sim_threads` only changes wall-clock
// time, never results: the shard partition, window width and the barrier's
// canonical reserve order are all thread-count independent.  These tests
// fingerprint *everything* a run produces — makespan bits, every aggregate
// metric, fault counters, network totals, per-link busy times, per-shard
// engine statistics and the final payload of every rank — and require the
// fingerprints to match exactly for sim_threads in {1, 2, 8, -1}, on the
// four machine shapes of the acceptance matrix (paragon8x8, t3d512,
// torus4x4x4x4, cluster8x4), with faults off and on.  Under TSan this
// suite doubles as the data-race check for the engine's worker pool and
// the runtime's per-shard state.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "dist/distribution.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb {
namespace {

// Doubles are rendered as exact bit patterns: "identical" here means
// byte-identical, not approximately equal.
void put(std::ostringstream& os, double v) {
  os << std::bit_cast<std::uint64_t>(v) << ',';
}

std::string fingerprint(const stop::RunResult& r) {
  std::ostringstream os;
  put(os, r.time_us);
  const mp::RunMetrics& m = r.outcome.metrics;
  os << m.total_sends << ',' << m.total_recvs << ',' << m.total_bytes_sent
     << ',' << m.congestion << ',' << m.max_waits << ',' << m.max_send_recv
     << ',' << m.iterations << ',' << m.transit_drops << ','
     << m.retransmits << ',' << m.duplicates << ',';
  put(os, m.av_msg_lgth);
  put(os, m.av_act_proc);
  const net::NetworkStats& n = r.outcome.network;
  os << n.transfers << ',' << n.total_hops << ',' << n.total_bytes << ',';
  put(os, n.total_link_busy_us);
  put(os, n.max_link_busy_us);
  put(os, n.total_stall_us);
  for (const double b : r.outcome.link_busy_us) put(os, b);
  os << '|' << r.outcome.events << ',' << r.outcome.peak_queue_depth << '|';
  const mp::ParallelStats& ps = r.outcome.par;
  os << ps.shards << ',' << ps.windows << ',' << ps.idle_shard_windows
     << ',' << ps.staged_xfers << ',' << ps.held_xfers << ',';
  put(os, ps.window_us);
  put(os, ps.lookahead_min_us);
  put(os, ps.lookahead_max_us);
  for (const mp::ParallelStats::Shard& s : ps.per_shard)
    os << s.events << ':' << s.peak_queue_depth << ':' << s.busy_windows
       << ':' << s.idle_windows << ';';
  os << '|';
  for (const auto& ph : r.outcome.phases) {
    os << ph.name << ',' << ph.sends << ',' << ph.recvs << ',';
    put(os, ph.total_span_us);
    put(os, ph.max_span_us);
  }
  os << '|';
  for (const mp::Payload& p : r.final_payloads) {
    for (const mp::Chunk& c : p.chunks()) os << c.source << ':' << c.bytes << ';';
    os << '/';
  }
  return os.str();
}

stop::RunResult run_with_threads(const machine::MachineConfig& machine,
                                 int sources, Bytes bytes, int threads,
                                 const fault::FaultSpec& faults = {}) {
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kRandom, sources, bytes, 11);
  stop::RunConfig cfg;
  cfg.sim_threads(threads);
  if (faults.any()) cfg.faults(faults, 7);
  return stop::run(*stop::make_br_lin(), pb, cfg);
}

void expect_identical_across_thread_counts(
    const machine::MachineConfig& machine, int sources, Bytes bytes,
    const fault::FaultSpec& faults, int expected_shards) {
  const stop::RunResult one =
      run_with_threads(machine, sources, bytes, 1, faults);
  ASSERT_TRUE(one.outcome.par.parallel());
  EXPECT_EQ(one.outcome.par.shards, expected_shards);
  const std::string fp = fingerprint(one);
  EXPECT_EQ(fp, fingerprint(run_with_threads(machine, sources, bytes, 2,
                                             faults)));
  EXPECT_EQ(fp, fingerprint(run_with_threads(machine, sources, bytes, 8,
                                             faults)));
  // -1 = auto-sized pool (host core count); same contract.
  EXPECT_EQ(fp, fingerprint(run_with_threads(machine, sources, bytes, -1,
                                             faults)));
}

TEST(ParallelRun, Paragon8x8IdenticalAcrossThreadCounts) {
  // 64 nodes -> 2 regions (net::region_count).
  expect_identical_across_thread_counts(machine::paragon(8, 8), 8, 2048, {},
                                        2);
}

TEST(ParallelRun, Paragon8x8IdenticalAcrossThreadCountsWithFaults) {
  fault::FaultSpec faults;
  faults.drop_rate = 0.05;
  faults.stragglers = 3;
  faults.straggle_factor = 2.0;
  expect_identical_across_thread_counts(machine::paragon(8, 8), 8, 2048,
                                        faults, 2);
}

TEST(ParallelRun, T3d512IdenticalAcrossThreadCounts) {
  // 512 nodes -> the 16-region cap.
  expect_identical_across_thread_counts(machine::t3d(512), 8, 1024, {}, 16);
}

TEST(ParallelRun, T3d512IdenticalAcrossThreadCountsWithFaults) {
  fault::FaultSpec faults;
  faults.drop_rate = 0.02;
  expect_identical_across_thread_counts(machine::t3d(512), 8, 1024, faults,
                                        16);
}

TEST(ParallelRun, Torus4x4x4x4IdenticalAcrossThreadCounts) {
  // 256 nodes -> 8 regions; the k-ary n-cube exercises the hop-distance
  // lookahead matrix on a wraparound topology.
  expect_identical_across_thread_counts(machine::torus({4, 4, 4, 4}), 8,
                                        1024, {}, 8);
}

TEST(ParallelRun, Torus4x4x4x4IdenticalAcrossThreadCountsWithFaults) {
  fault::FaultSpec faults;
  faults.drop_rate = 0.03;
  faults.stragglers = 2;
  faults.straggle_factor = 1.5;
  expect_identical_across_thread_counts(machine::torus({4, 4, 4, 4}), 8,
                                        1024, faults, 8);
}

TEST(ParallelRun, Cluster8x4IdenticalAcrossThreadCounts) {
  // 8 nodes x 4 cores = 32 ranks -> the 2-region floor; the two-level
  // machine has strongly asymmetric intra/inter-node latencies.
  expect_identical_across_thread_counts(machine::cluster(8, 4), 6, 2048, {},
                                        2);
}

TEST(ParallelRun, Cluster8x4IdenticalAcrossThreadCountsWithFaults) {
  fault::FaultSpec faults;
  faults.drop_rate = 0.05;
  expect_identical_across_thread_counts(machine::cluster(8, 4), 6, 2048,
                                        faults, 2);
}

TEST(ParallelRun, ParallelMakespanMatchesSerial) {
  // The conservative engine only reorders *concurrent* work; the makespan
  // (and every count) must match the serial loop even when same-window
  // event interleavings differ.  br_lin on a small machine has a single
  // deterministic critical path, so the times agree exactly.
  const machine::MachineConfig machine = machine::paragon(8, 8);
  const stop::RunResult serial = run_with_threads(machine, 4, 4096, 0);
  const stop::RunResult par = run_with_threads(machine, 4, 4096, 2);
  EXPECT_FALSE(serial.outcome.par.parallel());
  ASSERT_TRUE(par.outcome.par.parallel());
  EXPECT_DOUBLE_EQ(serial.time_us, par.time_us);
  EXPECT_EQ(serial.outcome.metrics.total_sends,
            par.outcome.metrics.total_sends);
  EXPECT_EQ(serial.outcome.metrics.total_recvs,
            par.outcome.metrics.total_recvs);
}

TEST(ParallelRun, TracingFallsBackToSerialLoop) {
  // Tracing needs the serial loop's global event order; requesting both
  // must silently take the serial path (par stats empty, trace intact).
  const stop::Problem pb = stop::make_problem(machine::paragon(4, 4),
                                              dist::Kind::kEqual, 4, 512);
  const stop::RunResult r = stop::run(
      *stop::make_br_lin(), pb, stop::RunConfig{}.trace().sim_threads(8));
  EXPECT_FALSE(r.outcome.par.parallel());
  EXPECT_FALSE(r.trace.empty());
}

TEST(ParallelRun, WindowStatisticsAreConsistent) {
  const stop::RunResult r =
      run_with_threads(machine::paragon(8, 8), 8, 2048, 2);
  const mp::ParallelStats& ps = r.outcome.par;
  ASSERT_TRUE(ps.parallel());
  EXPECT_GT(ps.window_us, 0.0);
  EXPECT_GT(ps.windows, 0u);
  ASSERT_EQ(static_cast<int>(ps.per_shard.size()), ps.shards);
  EXPECT_GE(ps.lookahead_min_us, ps.window_us);
  EXPECT_GE(ps.lookahead_max_us, ps.lookahead_min_us);
  std::uint64_t events = 0;
  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  for (const auto& s : ps.per_shard) {
    events += s.events;
    busy += s.busy_windows;
    idle += s.idle_windows;
    // Per shard, every window was either busy or idle — never both, never
    // neither (the underflow bug this PR fixes reported a *derived* idle
    // count that silently went wrong when the tiling broke).
    EXPECT_EQ(s.busy_windows + s.idle_windows, ps.windows);
  }
  EXPECT_EQ(events, r.outcome.events);
  EXPECT_EQ(idle, ps.idle_shard_windows);
  EXPECT_EQ(busy + idle, ps.windows * static_cast<std::uint64_t>(ps.shards));
  // br_lin on 64 nodes definitely crosses regions.
  EXPECT_GT(ps.staged_xfers, 0u);
}

}  // namespace
}  // namespace spb
