#include "verify/certificate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/mutate.h"
#include "analyze/record.h"
#include "common/check.h"
#include "machine/config.h"
#include "mp/mailbox.h"
#include "mp/schedule.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "verify/explore.h"
#include "verify/match.h"
#include "verify/structure.h"

// Unit tests for the schedule model-checker: each layer against both a
// real recorded schedule (2-Step on paragon4x4) and hand-built schedules
// that violate exactly one obligation.

namespace spb::verify {
namespace {

struct Recorded {
  stop::Problem pb;
  mp::Schedule schedule;
};

const Recorded& recorded_two_step() {
  static const Recorded r = [] {
    const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
    stop::Problem pb = stop::make_problem(machine::paragon(4, 4),
                                          dist::Kind::kRow, 4, 2048);
    analyze::RecordedRun run = analyze::record_run(*alg, pb);
    SPB_CHECK_MSG(run.completed, run.failure);
    return Recorded{std::move(pb), std::move(run.schedule)};
  }();
  return r;
}

mp::ScheduleOp send_op(int id, Rank from, Rank to, int tag, int match) {
  mp::ScheduleOp op;
  op.kind = mp::ScheduleOp::Kind::kSend;
  op.id = id;
  op.rank = from;
  op.peer = to;
  op.tag = tag;
  op.wire_bytes = 1024;
  op.chunk_sources = {from};
  op.payload_bytes = 1000;
  op.match = match;
  return op;
}

mp::ScheduleOp recv_op(int id, Rank at, Rank peer, int tag, int match) {
  mp::ScheduleOp op;
  op.kind = mp::ScheduleOp::Kind::kRecv;
  op.id = id;
  op.rank = at;
  op.peer = peer;
  op.tag = tag;
  op.wire_bytes = match >= 0 ? 1024 : 0;
  op.match = match;
  op.completed = match >= 0;
  if (match >= 0) {
    op.chunk_sources = {};
    op.payload_bytes = 1000;
  }
  return op;
}

bool has_match_issue(const MatchCheck& c, MatchIssue::Kind k) {
  return std::any_of(c.issues.begin(), c.issues.end(),
                     [k](const MatchIssue& i) { return i.kind == k; });
}

bool has_structure_issue(const Structure& s, StructureIssue::Kind k) {
  return std::any_of(s.issues.begin(), s.issues.end(),
                     [k](const StructureIssue& i) { return i.kind == k; });
}

// --- layer 1+2: match graph and wait-for graph -------------------------

TEST(MatchGraph, CleanRecordingIsCompleteAndFifoSafe) {
  const MatchCheck c = check_match_graph(recorded_two_step().schedule);
  EXPECT_TRUE(c.ok()) << c.to_string();
  EXPECT_GT(c.sends, 0);
  EXPECT_EQ(c.sends, c.recvs);
  EXPECT_EQ(c.matched_pairs, c.sends);
}

TEST(MatchGraph, DroppedSendLeavesAnUnmatchedRecv) {
  const Recorded& rec = recorded_two_step();
  const analyze::MutationResult mut =
      analyze::apply_mutation(rec.schedule, analyze::Mutation::kDropSend, 3);
  const MatchCheck c = check_match_graph(mut.schedule);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kUnmatchedRecv))
      << c.to_string();
}

TEST(MatchGraph, TagSwapBreaksTheFilter) {
  const Recorded& rec = recorded_two_step();
  const analyze::MutationResult mut = analyze::apply_mutation(
      rec.schedule, analyze::Mutation::kTagMismatch, 3);
  const MatchCheck c = check_match_graph(mut.schedule);
  EXPECT_FALSE(c.ok());
  // The retagged send no longer satisfies its receiver's pinned filter.
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kFilterViolation))
      << c.to_string();
}

TEST(MatchGraph, CrossedChannelConsumptionIsAFifoViolation) {
  // Two messages on the (0 -> 1, tag 0) channel, recorded as consumed in
  // the opposite order from their sends — the mailbox cannot do that.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, /*match=*/3), send_op(1, 0, 1, 0, /*match=*/2),
          recv_op(2, 1, 0, 0, /*match=*/1), recv_op(3, 1, 0, 0, /*match=*/0)});
  const MatchCheck c = check_match_graph(sched);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kFifoViolation))
      << c.to_string();
}

TEST(MatchGraph, PinnedFilterMismatchIsAFilterViolation) {
  // Receive pinned to source 2 but recorded as consuming rank 0's send.
  const mp::Schedule sched = mp::Schedule::from_ops(
      3, {send_op(0, 0, 1, 0, /*match=*/1), recv_op(1, 1, 2, 0, /*match=*/0)});
  const MatchCheck c = check_match_graph(sched);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kFilterViolation))
      << c.to_string();
}

TEST(MatchGraph, UnconsumedSendAndUnmatchedRecvAreBothFlagged) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, /*match=*/-1),
          recv_op(1, 1, 0, 1, /*match=*/-1)});
  const MatchCheck c = check_match_graph(sched);
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kUnconsumedSend));
  EXPECT_TRUE(has_match_issue(c, MatchIssue::Kind::kUnmatchedRecv));
}

TEST(WaitForGraph, CleanRecordingIsAcyclicWithPositiveDepth) {
  const DeadlockCheck d = check_deadlock_free(recorded_two_step().schedule);
  EXPECT_TRUE(d.ok()) << d.message;
  EXPECT_GT(d.critical_depth, 0);
}

TEST(WaitForGraph, CyclicWaitMutantYieldsACycle) {
  const Recorded& rec = recorded_two_step();
  const analyze::MutationResult mut = analyze::apply_mutation(
      rec.schedule, analyze::Mutation::kCyclicWait, 3);
  const DeadlockCheck d = check_deadlock_free(mut.schedule);
  EXPECT_FALSE(d.ok());
  EXPECT_GE(d.cycle.size(), 4u) << d.message;  // r1 -> s2 -> r2 -> s1
  EXPECT_FALSE(d.message.empty());
}

// --- layer 3: pool/segment structure -----------------------------------

TEST(Structure, CleanRecordingSatisfiesConfluence) {
  const Recorded& rec = recorded_two_step();
  const Structure s = extract_structure(rec.schedule, rec.pb.sources);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_FALSE(s.pools.empty());
  EXPECT_EQ(s.programs.size(), static_cast<size_t>(rec.pb.machine.p));
}

TEST(Structure, WildcardRecvWithoutMatchIsUnbound) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, /*match=*/-1),
          recv_op(1, 1, mp::kAnySource, 0, /*match=*/-1)});
  const std::vector<Rank> sources = {0};
  const Structure s = extract_structure(sched, sources);
  EXPECT_TRUE(has_structure_issue(s, StructureIssue::Kind::kUnboundSegment))
      << s.to_string();
}

TEST(Structure, TwoSegmentsOnOneClassCollide) {
  // Both wildcard segments consume (src 0, tag 0): delivery order no
  // longer determines which segment runs on which message.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, /*match=*/2), send_op(1, 0, 1, 0, /*match=*/3),
          recv_op(2, 1, mp::kAnySource, 0, /*match=*/0),
          recv_op(3, 1, mp::kAnySource, 0, /*match=*/1)});
  const std::vector<Rank> sources = {0};
  const Structure s = extract_structure(sched, sources);
  EXPECT_TRUE(has_structure_issue(s, StructureIssue::Kind::kClassCollision))
      << s.to_string();
}

TEST(Structure, ForeignCompatibleSendAfterThePoolIsAStealHazard) {
  // Rank 1 drains two wildcard deliveries, then a pinned receive takes a
  // third message that the pool's filter also admits — the runtime could
  // have delivered it into the pool instead.
  const mp::Schedule sched = mp::Schedule::from_ops(
      4, {send_op(0, 0, 1, 0, /*match=*/3), send_op(1, 2, 1, 0, /*match=*/4),
          send_op(2, 3, 1, 0, /*match=*/5),
          recv_op(3, 1, mp::kAnySource, 0, /*match=*/0),
          recv_op(4, 1, mp::kAnySource, 0, /*match=*/1),
          recv_op(5, 1, 3, 0, /*match=*/2)});
  const std::vector<Rank> sources = {0, 2, 3};
  const Structure s = extract_structure(sched, sources);
  EXPECT_TRUE(has_structure_issue(s, StructureIssue::Kind::kStealHazard))
      << s.to_string();
}

// --- layer 4: exploration ----------------------------------------------

TEST(Explore, CleanRecordingIsExhaustiveAndDeterministic) {
  const Recorded& rec = recorded_two_step();
  const Structure s = extract_structure(rec.schedule, rec.pb.sources);
  ASSERT_TRUE(s.ok());
  const ExploreResult e = explore(rec.schedule, s);
  EXPECT_TRUE(e.exhaustive) << e.note;
  EXPECT_TRUE(e.deterministic) << e.note;
  EXPECT_FALSE(e.deadlock_found) << e.deadlock_witness;
  EXPECT_GE(e.terminals, 1);
  EXPECT_GE(e.states, 1u);
}

TEST(Explore, StateBudgetExhaustionIsReportedNotCertified) {
  const Recorded& rec = recorded_two_step();
  const Structure s = extract_structure(rec.schedule, rec.pb.sources);
  ASSERT_TRUE(s.ok());
  ExploreOptions opt;
  opt.max_states = 1;
  const ExploreResult e = explore(rec.schedule, s, opt);
  EXPECT_FALSE(e.exhaustive);
  EXPECT_FALSE(e.deterministic);
}

// --- layer 5: the certificate ------------------------------------------

TEST(Certificate, CleanTwoStepIsCertified) {
  const Recorded& rec = recorded_two_step();
  const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
  const Certificate cert = certify(*alg, rec.pb);
  EXPECT_TRUE(cert.certified) << cert.to_string();
  EXPECT_TRUE(cert.reasons.empty());
  EXPECT_EQ(cert.algorithm, "2-Step");
  EXPECT_EQ(cert.ranks, 16);
  EXPECT_EQ(cert.verdict(), "certified");
}

TEST(Certificate, EveryRequiredMutationIsRejected) {
  const Recorded& rec = recorded_two_step();
  for (const analyze::Mutation m :
       {analyze::Mutation::kDropSend, analyze::Mutation::kTagMismatch,
        analyze::Mutation::kCyclicWait}) {
    const analyze::MutationResult mut =
        analyze::apply_mutation(rec.schedule, m, /*seed=*/3);
    const Certificate cert =
        certify_schedule(mut.schedule, rec.pb.sources);
    EXPECT_FALSE(cert.certified) << analyze::mutation_name(m);
    EXPECT_FALSE(cert.reasons.empty()) << analyze::mutation_name(m);
    EXPECT_EQ(cert.verdict(), "rejected");
  }
}

TEST(Certificate, JsonCarriesVerdictAndEveryLayer) {
  const Recorded& rec = recorded_two_step();
  const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
  const Certificate cert = certify(*alg, rec.pb);
  std::ostringstream os;
  write_certificate_json(os, cert);
  const std::string json = os.str();
  for (const char* key :
       {"\"algorithm\"", "\"certified\"", "\"match\"", "\"wait_for\"",
        "\"structure\"", "\"exploration\"", "\"reasons\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Certificate, ToStringNamesTheVerdict) {
  const Recorded& rec = recorded_two_step();
  const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
  const Certificate cert = certify(*alg, rec.pb);
  EXPECT_NE(cert.to_string().find("certified"), std::string::npos)
      << cert.to_string();
}

}  // namespace
}  // namespace spb::verify
