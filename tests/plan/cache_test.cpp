// Plan cache behavior: hit/miss/eviction accounting, LRU order, and
// byte-identical plans under concurrent planning from many threads.
#include "plan/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "machine/config.h"
#include "stop/problem.h"

namespace spb::plan {
namespace {

std::vector<Rank> sources_for(const machine::MachineConfig& m,
                              dist::Kind kind, int s,
                              std::uint64_t seed = 1) {
  return stop::make_problem(m, kind, s, 1024, seed).sources;
}

TEST(PlanCache, HitsMissesAndBucketReuse) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  PlanCache cache;
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);

  const Plan first = cache.plan(planner, srcs, 6144, "R");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Same bucket (4096..8191), different exact length: a hit, and the plan
  // is byte-identical because pricing used the bucket representative.
  const Plan second = cache.plan(planner, srcs, 5000, "R");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first.table_text(), second.table_text());
  EXPECT_EQ(first.planned_bytes, second.planned_bytes);

  // Next bucket: a miss.
  cache.plan(planner, srcs, 8192, "R");
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 1.0 / 3.0);
}

TEST(PlanCache, ContextAndMachineInvalidate) {
  // A fault-spec change or machine change must not serve the old plan.
  const machine::MachineConfig m8 = machine::paragon(8, 8);
  const machine::MachineConfig m16 = machine::paragon(16, 16);
  const Planner p8(m8);
  const Planner p16(m16);
  PlanCache cache;
  const std::vector<Rank> srcs = sources_for(m8, dist::Kind::kRow, 8);

  cache.plan(p8, srcs, 6144, "R", "");
  cache.plan(p8, srcs, 6144, "R", "drop=0.1");   // fault context differs
  cache.plan(p16, srcs, 6144, "R", "");          // machine differs
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Each variant is individually cached now.
  cache.plan(p8, srcs, 6144, "R", "");
  cache.plan(p8, srcs, 6144, "R", "drop=0.1");
  cache.plan(p16, srcs, 6144, "R", "");
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(PlanCache, LruEvictionAndStats) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  PlanCache cache(/*capacity=*/2);
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);

  cache.plan(planner, srcs, 1024, "R");   // bucket 10
  cache.plan(planner, srcs, 4096, "R");   // bucket 12
  cache.plan(planner, srcs, 1024, "R");   // hit, refreshes bucket 10
  cache.plan(planner, srcs, 16384, "R");  // bucket 14: evicts bucket 12 (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  cache.plan(planner, srcs, 1024, "R");  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.plan(planner, srcs, 4096, "R");  // evicted above: a miss again
  EXPECT_EQ(cache.stats().misses, 4u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(PlanCache, PeekDoesNotTouchStats) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  PlanCache cache;
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);
  const Plan planned = cache.plan(planner, srcs, 6144, "R");

  Plan out;
  EXPECT_TRUE(cache.peek(planned.signature, out));
  EXPECT_EQ(out.table_text(), planned.table_text());
  const Signature other = make_signature(m, srcs, 8192, "R", "");
  EXPECT_FALSE(cache.peek(other, out));
  EXPECT_EQ(cache.stats().lookups(), 1u);  // only the original plan()
}

TEST(PlanCache, RejectsZeroCapacity) {
  EXPECT_THROW(PlanCache(0), CheckError);
}

TEST(PlanCache, ConcurrentPlanningIsDeterministic) {
  // Many threads racing on overlapping problems: every thread must read
  // byte-identical tables, and the miss count must equal the distinct
  // signature count (capacity is ample, so order cannot matter).
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  PlanCache cache;

  const std::vector<dist::Kind> kinds = {dist::Kind::kRow, dist::Kind::kBand,
                                         dist::Kind::kRandom};
  const std::vector<Bytes> lens = {1024, 6144, 32768};
  struct Job {
    std::vector<Rank> sources;
    Bytes len;
    std::string label;
  };
  std::vector<Job> jobs;
  for (const dist::Kind k : kinds)
    for (const Bytes len : lens)
      jobs.push_back({sources_for(m, k, 16), len,
                      std::string(dist::kind_name(k))});

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<std::vector<std::string>> seen(
      kThreads, std::vector<std::string>(jobs.size()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int round = 0; round < kRounds; ++round)
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          const Plan p = cache.plan(planner, jobs[j].sources, jobs[j].len,
                                    jobs[j].label);
          const std::string text = p.table_text();
          if (round == 0)
            seen[static_cast<std::size_t>(th)][j] = text;
          else
            ASSERT_EQ(seen[static_cast<std::size_t>(th)][j], text);
        }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int th = 1; th < kThreads; ++th)
    EXPECT_EQ(seen[static_cast<std::size_t>(th)], seen[0]);
  // Coalescing makes the books exact: racers on an in-flight signature
  // wait for the owner's result and count as hits, so misses equal the
  // distinct signature count — the planner ran exactly once per problem.
  // (Before coalescing, every thread that found the entry absent planned
  // it again outside the lock and each counted a miss.)
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(),
            static_cast<std::uint64_t>(kThreads) * kRounds * jobs.size());
  EXPECT_EQ(stats.misses + stats.hits, stats.lookups());
  EXPECT_EQ(stats.misses, jobs.size());
  EXPECT_EQ(cache.size(), jobs.size());
}

}  // namespace
}  // namespace spb::plan
