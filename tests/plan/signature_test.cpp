// Canonical problem signatures: the cache key must identify a problem by
// what the planner prices (machine, source multiset, distribution label,
// length bucket, fault context) and by nothing else — not source order,
// not the exact byte length inside a bucket.
#include "plan/signature.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/check.h"
#include "dist/signature.h"
#include "machine/config.h"

namespace spb::plan {
namespace {

TEST(LengthBucket, PowersOfTwoAndRepresentatives) {
  EXPECT_EQ(length_bucket(1), 0);
  EXPECT_EQ(length_bucket(2), 1);
  EXPECT_EQ(length_bucket(3), 1);
  EXPECT_EQ(length_bucket(4), 2);
  EXPECT_EQ(length_bucket(1023), 9);
  EXPECT_EQ(length_bucket(1024), 10);
  EXPECT_THROW(length_bucket(0), CheckError);

  // The representative is the bucket's geometric midpoint 3 * 2^(b-1),
  // inside [2^b, 2^(b+1)) for every b >= 1.
  EXPECT_EQ(representative_bytes(0), 1);
  for (int b = 1; b <= 20; ++b) {
    const Bytes rep = representative_bytes(b);
    EXPECT_EQ(length_bucket(rep), b) << "bucket " << b;
    EXPECT_EQ(rep, static_cast<Bytes>(3) << (b - 1));
  }
}

TEST(SourceMultisetHash, OrderIndependent) {
  const std::vector<Rank> sorted = {1, 5, 9, 22, 63};
  std::vector<Rank> shuffled = {63, 9, 1, 22, 5};
  EXPECT_EQ(dist::source_multiset_hash(sorted),
            dist::source_multiset_hash(shuffled));
  // Different multiset, different hash.
  EXPECT_NE(dist::source_multiset_hash({1, 5, 9, 22, 62}),
            dist::source_multiset_hash(sorted));
  EXPECT_NE(dist::source_multiset_hash({1, 5, 9, 22}),
            dist::source_multiset_hash(sorted));
}

TEST(Signature, SameMultisetSameKey) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  std::vector<Rank> sources = {3, 17, 40, 41, 63};
  const Signature a = make_signature(m, sources, 6144, "B", "");

  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(sources.begin(), sources.end(), rng);
    const Signature b = make_signature(m, sources, 6144, "B", "");
    EXPECT_EQ(a.key(), b.key()) << "trial " << trial;
    EXPECT_TRUE(a == b);
  }
}

TEST(Signature, SameBucketSameKeyAcrossExactLengths) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const std::vector<Rank> sources = {0, 9, 18, 27};
  // 4096..8191 all land in bucket 12.
  const Signature lo = make_signature(m, sources, 4096, "R", "");
  const Signature mid = make_signature(m, sources, 6144, "R", "");
  const Signature hi = make_signature(m, sources, 8191, "R", "");
  EXPECT_EQ(lo.key(), mid.key());
  EXPECT_EQ(mid.key(), hi.key());
  // 8192 crosses into bucket 13.
  EXPECT_NE(mid.key(), make_signature(m, sources, 8192, "R", "").key());
}

TEST(Signature, MachineChangeChangesKey) {
  const std::vector<Rank> sources = {0, 9, 18, 27};
  const Signature a =
      make_signature(machine::paragon(8, 8), sources, 6144, "R", "");
  const Signature b =
      make_signature(machine::paragon(16, 16), sources, 6144, "R", "");
  const Signature c =
      make_signature(machine::t3d(64), sources, 6144, "R", "");
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(b.key(), c.key());
}

TEST(Signature, TorusDimensionsChangeKeyAtEqualNodeCount) {
  // Same p, same near-square rows x cols grid — only the topology shape
  // (captured via the topology name) separates these, so the hash must
  // mix it in.
  const std::vector<Rank> sources = {0, 9, 18, 27};
  const Signature a =
      make_signature(machine::torus({4, 4, 4}), sources, 6144, "R", "");
  const Signature b =
      make_signature(machine::torus({2, 2, 16}), sources, 6144, "R", "");
  const Signature c =
      make_signature(machine::torus({8, 8}), sources, 6144, "R", "");
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_NE(b.key(), c.key());
}

TEST(Signature, ClusterTieringChangesKey) {
  // cluster8x4 and cluster4x8 have the same p = 32; the cores_per_node
  // tier split must separate them, and a cluster never collides with a
  // flat 32-processor machine.
  const std::vector<Rank> sources = {0, 9, 18, 27};
  const Signature a =
      make_signature(machine::cluster(8, 4), sources, 6144, "R", "");
  const Signature b =
      make_signature(machine::cluster(4, 8), sources, 6144, "R", "");
  const Signature flat =
      make_signature(machine::paragon(4, 8), sources, 6144, "R", "");
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), flat.key());
  EXPECT_NE(b.key(), flat.key());
}

TEST(Signature, FaultContextChangesKey) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const std::vector<Rank> sources = {0, 9, 18, 27};
  const Signature clean = make_signature(m, sources, 6144, "R", "");
  const Signature faulty =
      make_signature(m, sources, 6144, "R", "drop=0.1");
  EXPECT_NE(clean.key(), faulty.key());
}

TEST(Signature, DistributionLabelChangesKey) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const std::vector<Rank> sources = {0, 9, 18, 27};
  EXPECT_NE(make_signature(m, sources, 6144, "R", "").key(),
            make_signature(m, sources, 6144, "C", "").key());
}

}  // namespace
}  // namespace spb::plan
