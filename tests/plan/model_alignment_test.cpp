// The one-cost-model contract: plan::CostModel must stay aligned with the
// stop layer it prices — same algorithm registry, same ideal-target rule —
// without ever linking stop:: types itself.  These tests hold the two
// layers together so a drift in either shows up as a test failure, not a
// silently wrong plan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "machine/config.h"
#include "plan/cost_model.h"
#include "stop/algorithm.h"
#include "stop/frame.h"
#include "stop/problem.h"
#include "stop/reposition.h"

namespace spb::plan {
namespace {

TEST(ModelAlignment, AlgorithmsMatchStopRegistryInOrder) {
  const std::vector<std::string>& priced = CostModel::algorithms();
  const auto registry = stop::all_algorithms();
  ASSERT_EQ(priced.size(), registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i)
    EXPECT_EQ(priced[i], registry[i]->name()) << "registry slot " << i;

  const CostModel model;
  for (const std::string& name : priced)
    EXPECT_TRUE(model.can_price(name)) << name;
  EXPECT_FALSE(model.can_price("NoSuchAlgorithm"));
}

TEST(ModelAlignment, IdealTargetsMatchRepositionRule) {
  // For whole-machine frames positions and ranks coincide, so the model's
  // position-space targets must equal stop::ideal_targets_for verbatim.
  struct GridCase {
    int rows;
    int cols;
  };
  const std::vector<GridCase> grids = {{4, 4}, {8, 8}, {8, 4}, {2, 16}};
  const std::vector<std::string> bases = {"Br_Lin", "Br_xy_source",
                                          "Br_xy_dim"};
  for (const GridCase& g : grids) {
    const machine::MachineConfig m = machine::paragon(g.rows, g.cols);
    for (const std::string& base_name : bases) {
      const stop::AlgorithmPtr base = stop::find_algorithm(base_name);
      ASSERT_TRUE(base) << base_name;
      for (const int s : {1, 2, 3, g.rows, m.p / 4, m.p / 2}) {
        if (s < 1 || s > m.p) continue;
        const stop::Problem pb =
            stop::make_problem(m, dist::Kind::kBand, s, 1024);
        const std::vector<Rank> expected =
            stop::ideal_targets_for(*base, stop::Frame::whole(pb), s);
        const std::vector<Rank> got =
            CostModel::ideal_targets(base_name, g.rows, g.cols, s);
        EXPECT_EQ(got, expected)
            << base_name << " on " << g.rows << "x" << g.cols << " s=" << s;
      }
    }
  }
}

TEST(ModelAlignment, PredictRejectsUnknownNamesAndMalformedShapes) {
  const CostModel model;
  ProblemShape shape;
  shape.rows = 4;
  shape.cols = 4;
  shape.sources = {0, 5, 10};
  shape.message_bytes = 1024;
  EXPECT_GT(model.predict_us("Br_Lin", shape), 0.0);
  EXPECT_THROW(model.predict_us("NoSuchAlgorithm", shape), CheckError);

  ProblemShape out_of_range = shape;
  out_of_range.sources = {0, 99};  // beyond rows * cols
  EXPECT_THROW(model.predict_us("Br_Lin", out_of_range), CheckError);

  ProblemShape unsorted = shape;
  unsorted.sources = {10, 0, 5};
  EXPECT_THROW(model.predict_us("Br_Lin", unsorted), CheckError);
}

TEST(ModelAlignment, PermuteRoundScalesWithLength) {
  const CostModel model;  // default = the adaptive decision constants
  const double short_msg = model.permute_round_us(512);
  const double long_msg = model.permute_round_us(65536);
  EXPECT_GT(short_msg, 0.0);
  EXPECT_GT(long_msg, short_msg);
  // One round of overhead plus the paper's abstract per-byte ratio.
  EXPECT_DOUBLE_EQ(short_msg, 45.0 + 512.0 / 160.0);
}

TEST(ModelAlignment, CalibrationFromMachineIsPositive) {
  for (const machine::MachineConfig& m :
       {machine::paragon(8, 8), machine::t3d(64), machine::hypercube(6)}) {
    const Calibration cal = Calibration::from_machine(m);
    EXPECT_GT(cal.iter_overhead_us, 0.0) << m.name;
    EXPECT_GT(cal.per_byte_us, 0.0) << m.name;
    EXPECT_GE(cal.mpi_extra_us, 0.0) << m.name;
    EXPECT_GE(cal.combine_per_byte_us, 0.0) << m.name;
  }
}

TEST(ModelAlignment, LongerMessagesNeverPriceCheaper) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const CostModel model(Calibration::from_machine(m));
  const stop::Problem pb = stop::make_problem(m, dist::Kind::kBand, 16, 64);
  ProblemShape shape;
  shape.rows = m.rows;
  shape.cols = m.cols;
  shape.sources = pb.sources;
  for (const std::string& name : CostModel::algorithms()) {
    double prev = 0.0;
    for (const Bytes len : {Bytes{64}, Bytes{1024}, Bytes{16384}}) {
      shape.message_bytes = len;
      const double us = model.predict_us(name, shape);
      EXPECT_GE(us, prev) << name << " L=" << len;
      prev = us;
    }
  }
}

}  // namespace
}  // namespace spb::plan
