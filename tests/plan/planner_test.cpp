// Planner behavior: full-registry ranked tables, deterministic rendering
// under the --jobs fan-out machinery, and loud rejection of algorithms the
// model cannot price.
#include "plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "machine/config.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "sweep_runner.h"

namespace spb::plan {
namespace {

TEST(Planner, RankedTableCoversTheWholeRegistry) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  const stop::Problem pb =
      stop::make_problem(m, dist::Kind::kRow, 8, 6144);
  const Plan plan = planner.plan(pb.sources, pb.message_bytes, "R");

  const auto registry = stop::all_algorithms();
  ASSERT_EQ(plan.ranked.size(), registry.size());

  std::set<std::string> registry_names;
  for (const auto& alg : registry) registry_names.insert(alg->name());
  std::set<std::string> ranked_names;
  for (const Plan::Entry& e : plan.ranked) ranked_names.insert(e.algorithm);
  EXPECT_EQ(ranked_names, registry_names);

  // Ascending predicted time, finite and positive throughout.
  for (std::size_t i = 0; i < plan.ranked.size(); ++i) {
    EXPECT_GT(plan.ranked[i].predicted_us, 0.0) << plan.ranked[i].algorithm;
    if (i > 0) {
      EXPECT_GE(plan.ranked[i].predicted_us, plan.ranked[i - 1].predicted_us);
    }
  }
  EXPECT_EQ(plan.best(), plan.ranked.front().algorithm);
}

TEST(Planner, PricesAtTheBucketRepresentative) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  const stop::Problem pb =
      stop::make_problem(m, dist::Kind::kRow, 8, 6144);

  // 4096 and 8000 share bucket 12: identical tables, priced at 3 * 2^11.
  const Plan a = planner.plan(pb.sources, 4096, "R");
  const Plan b = planner.plan(pb.sources, 8000, "R");
  EXPECT_EQ(a.planned_bytes, static_cast<Bytes>(6144));
  EXPECT_EQ(a.table_text(), b.table_text());
}

TEST(Planner, TablesAreByteIdenticalAcrossJobsFanOut) {
  // The same problems planned through the SweepRunner with 1 worker and
  // with many workers must render byte-identical tables in every slot —
  // the determinism contract ext_planner checks at acceptance scale.
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);

  struct Case {
    dist::Kind kind;
    int s;
    Bytes len;
  };
  std::vector<Case> cases;
  for (const dist::Kind kind :
       {dist::Kind::kRow, dist::Kind::kEqual, dist::Kind::kRandom})
    for (const Bytes len : {Bytes{1024}, Bytes{6144}, Bytes{32768}})
      cases.push_back({kind, 12, len});

  const auto tables_with_jobs = [&](int jobs) {
    std::vector<std::string> texts(cases.size());
    bench::SweepRunner(jobs).run(cases.size(), [&](std::size_t i) {
      const stop::Problem pb = stop::make_problem(
          m, cases[i].kind, cases[i].s, cases[i].len);
      const Plan p = planner.plan(pb.sources, pb.message_bytes,
                                  std::string(dist::kind_name(cases[i].kind)));
      texts[i] = p.table_text();
    });
    return texts;
  };
  const std::vector<std::string> serial = tables_with_jobs(1);
  const std::vector<std::string> parallel = tables_with_jobs(
      std::max(4, bench::SweepRunner::hardware_jobs()));
  EXPECT_EQ(serial, parallel);
  for (const std::string& text : serial) EXPECT_FALSE(text.empty());
}

TEST(Planner, RejectsUnpriceableAlgorithmAtConstruction) {
  const machine::MachineConfig m = machine::paragon(4, 4);
  EXPECT_THROW(Planner(m, {"Br_Lin", "NoSuchAlgorithm"}), CheckError);
}

TEST(Planner, RestrictedRegistryRanksOnlyThoseNames) {
  const machine::MachineConfig m = machine::paragon(4, 4);
  const Planner planner(m, {"Br_Lin", "2-Step"});
  const stop::Problem pb = stop::make_problem(m, dist::Kind::kRow, 4, 1024);
  const Plan plan = planner.plan(pb.sources, pb.message_bytes);
  ASSERT_EQ(plan.ranked.size(), 2u);
  EXPECT_TRUE(plan.best() == "Br_Lin" || plan.best() == "2-Step");
}

}  // namespace
}  // namespace spb::plan
