#include "common/math.h"

#include <gtest/gtest.h>

namespace spb {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(30, 10), 3);   // i = ceil(s/c) for R(30) on 10x10
  EXPECT_EQ(ceil_div(31, 10), 4);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(100));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Math, Ilog2FloorAndCeil) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_floor(100), 6);
  EXPECT_EQ(ilog2_ceil(100), 7);  // Br_Lin iterations on a 10x10 Paragon
  EXPECT_EQ(ilog2_ceil(128), 7);
  EXPECT_EQ(ilog2_ceil(129), 8);
}

TEST(Math, Ilog2CeilMatchesDefinitionExhaustively) {
  for (std::int64_t n = 1; n <= 4096; ++n) {
    const int k = ilog2_ceil(n);
    EXPECT_GE(std::int64_t{1} << k, n) << n;
    if (k > 0) {
      EXPECT_LT(std::int64_t{1} << (k - 1), n) << n;
    }
  }
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(100), 128);
}

TEST(Math, IsqrtAndCeilSqrt) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(8), 2);
  EXPECT_EQ(isqrt(9), 3);
  EXPECT_EQ(ceil_sqrt(9), 3);
  EXPECT_EQ(ceil_sqrt(10), 4);
  EXPECT_EQ(ceil_sqrt(30), 6);  // Sq(30) block side in the paper's Figure 1
  for (std::int64_t n = 0; n <= 2000; ++n) {
    const std::int64_t r = ceil_sqrt(n);
    EXPECT_GE(r * r, n);
    if (r > 0) {
      EXPECT_LT((r - 1) * (r - 1), n);
    }
  }
}

}  // namespace
}  // namespace spb
