#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.h"

namespace spb {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i)
    ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(9);
  for (const int n : {0, 1, 2, 17, 100}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(static_cast<int>(p.size()), n);
    std::sort(p.begin(), p.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(200));
    const int k = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n) + 1));
    const auto sample = rng.sample_without_replacement(n, k);
    ASSERT_EQ(static_cast<int>(sample.size()), k);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    const std::set<std::int32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int>(unique.size()), k);
    for (const auto v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleFullRangeIsEverything) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(32, 32);
  std::vector<std::int32_t> want(32);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(sample, want);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
  EXPECT_THROW(rng.next_in(3, 2), CheckError);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
  EXPECT_THROW(rng.permutation(-1), CheckError);
}

}  // namespace
}  // namespace spb
