#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace spb {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(23);
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 100 - 50;
    all.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty right side: unchanged
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty left side: becomes a copy
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

}  // namespace
}  // namespace spb
