#include "common/small_vec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/check.h"

namespace spb {
namespace {

using Vec = SmallVec<std::int64_t, 4>;

TEST(SmallVec, StartsInlineAndEmpty) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.inline_storage());
}

TEST(SmallVec, StaysInlineUpToN) {
  Vec v;
  for (std::int64_t i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.inline_storage());
  EXPECT_EQ(v.size(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVec, SpillsToHeapPreservingContents) {
  Vec v;
  for (std::int64_t i = 0; i < 9; ++i) v.push_back(i);
  EXPECT_FALSE(v.inline_storage());
  EXPECT_GE(v.capacity(), 9u);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, ReserveGrowsGeometricallyAndKeepsSize) {
  Vec v;
  v.push_back(7);
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
  // reserve below current capacity is a no-op.
  const std::size_t cap = v.capacity();
  v.reserve(2);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVec, CopyAssignReusesCapacity) {
  Vec big;
  for (std::int64_t i = 0; i < 64; ++i) big.push_back(i);
  const std::size_t cap = big.capacity();
  const std::int64_t* buf = big.data();

  Vec small;
  small.push_back(1);
  small.push_back(2);
  big = small;
  EXPECT_EQ(big.size(), 2u);
  EXPECT_EQ(big.capacity(), cap);  // no shrink-to-fit
  EXPECT_EQ(big.data(), buf);      // same heap buffer, no reallocation
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[1], 2);
}

TEST(SmallVec, MoveStealsHeapBuffer) {
  Vec v;
  for (std::int64_t i = 0; i < 32; ++i) v.push_back(i);
  const std::int64_t* buf = v.data();
  Vec w = std::move(v);
  EXPECT_EQ(w.data(), buf);
  EXPECT_EQ(w.size(), 32u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): spec'd reset
}

TEST(SmallVec, MoveOfInlineCopies) {
  Vec v;
  v.push_back(5);
  Vec w = std::move(v);
  EXPECT_TRUE(w.inline_storage());
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 5);
}

TEST(SmallVec, ResizeWithinCapacityShrinksAndRestores) {
  Vec v;
  for (std::int64_t i = 0; i < 6; ++i) v.push_back(i);
  v.resize_within_capacity(3);
  EXPECT_EQ(v.size(), 3u);
  // The trailing elements were not destroyed (trivially copyable):
  // growing back within capacity exposes them again.
  v.resize_within_capacity(6);
  EXPECT_EQ(v[5], 5);
  EXPECT_THROW(v.resize_within_capacity(v.capacity() + 1), CheckError);
}

TEST(SmallVec, EqualityComparesContents) {
  Vec a;
  Vec b;
  a.push_back(1);
  b.push_back(1);
  EXPECT_EQ(a, b);
  b.push_back(2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace spb
