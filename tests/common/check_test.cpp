#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace spb {
namespace {

TEST(Check, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(SPB_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SPB_CHECK_MSG(true, "unused"));
  EXPECT_NO_THROW(SPB_REQUIRE(true, "unused"));
}

TEST(Check, FailureCarriesExpressionAndLocation) {
  try {
    SPB_CHECK(2 + 2 == 5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, MessageStreamsArbitraryValues) {
  const int rank = 7;
  try {
    SPB_REQUIRE(false, "rank " << rank << " misbehaved at t=" << 1.5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 7 misbehaved at t=1.5"), std::string::npos)
        << what;
    EXPECT_NE(what.find("SPB_REQUIRE"), std::string::npos) << what;
  }
}

TEST(Check, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  SPB_CHECK(probe());
  EXPECT_EQ(evaluations, 1);
  SPB_CHECK_MSG(probe(), "msg");
  EXPECT_EQ(evaluations, 2);
}

}  // namespace
}  // namespace spb
