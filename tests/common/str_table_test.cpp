#include <gtest/gtest.h>

#include "common/check.h"
#include "common/str.h"
#include "common/table.h"

namespace spb {
namespace {

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0");
  EXPECT_EQ(human_bytes(32), "32");
  EXPECT_EQ(human_bytes(512), "512");
  EXPECT_EQ(human_bytes(1024), "1K");
  EXPECT_EQ(human_bytes(4096), "4K");
  EXPECT_EQ(human_bytes(16384), "16K");
  EXPECT_EQ(human_bytes(1536), "1536");  // not an exact multiple
  EXPECT_EQ(human_bytes(2 * 1024 * 1024), "2M");
}

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(7.306, 2), "7.31");
  EXPECT_EQ(fixed(7.304, 2), "7.30");
  EXPECT_EQ(fixed(7.0, 0), "7");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Str, SignedPercent) {
  EXPECT_EQ(signed_percent(0.124, 1), "+12.4%");
  EXPECT_EQ(signed_percent(-0.065, 1), "-6.5%");
  EXPECT_EQ(signed_percent(0.0, 1), "+0.0%");
}

TEST(Str, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("long", 2), "long");  // no truncation
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.row().cell("name").cell("ms");
  t.row().cell("Br_Lin").num(2.186, 3);
  t.row().cell("x").num(std::int64_t{10});
  const std::string out = t.render();
  // Columns: "name"/"Br_Lin"/"x" (width 6, left) and "ms"/"2.186"/"10"
  // (width 5, numbers right-aligned).
  EXPECT_NE(out.find("name    ms"), std::string::npos) << out;
  EXPECT_NE(out.find("Br_Lin  2.186"), std::string::npos) << out;
  EXPECT_NE(out.find("x          10"), std::string::npos) << out;
  // Separator under the header spans both columns plus the 2-space gap.
  EXPECT_EQ(std::count(out.begin(), out.end(), '-'), 6 + 2 + 5);
}

TEST(Table, CellBeforeRowThrows) {
  TextTable t;
  EXPECT_THROW(t.cell("oops"), CheckError);
  EXPECT_THROW(t.num(1.0, 1), CheckError);
}

}  // namespace
}  // namespace spb
