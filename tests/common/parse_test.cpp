// Strict numeric parsing (common/parse.h): the helpers must reject
// everything the raw std:: conversions silently accept — wrapped negatives,
// partial parses, infinities — and say why.
#include "common/parse.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace spb {
namespace {

TEST(ParseDouble, AcceptsPlainNumbers) {
  double d = 0;
  std::string err;
  EXPECT_TRUE(try_parse_double("1.5", d, err));
  EXPECT_DOUBLE_EQ(d, 1.5);
  EXPECT_TRUE(try_parse_double("-0.25", d, err));
  EXPECT_DOUBLE_EQ(d, -0.25);
  EXPECT_TRUE(try_parse_double("1e3", d, err));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_TRUE(try_parse_double("0", d, err));
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(ParseDouble, RejectsEmpty) {
  double d = 0;
  std::string err;
  EXPECT_FALSE(try_parse_double("", d, err));
  EXPECT_EQ(err, "empty value");
}

TEST(ParseDouble, RejectsTrailingJunk) {
  double d = 0;
  std::string err;
  EXPECT_FALSE(try_parse_double("5x", d, err));
  EXPECT_EQ(err, "trailing junk 'x' after number");
  EXPECT_FALSE(try_parse_double("1.5.2", d, err));
  EXPECT_NE(err.find("trailing junk"), std::string::npos);
}

TEST(ParseDouble, RejectsOutOfRange) {
  double d = 0;
  std::string err;
  EXPECT_FALSE(try_parse_double("1e999", d, err));
  EXPECT_EQ(err, "out of range for a double");
}

TEST(ParseDouble, RejectsNonFiniteSpellings) {
  double d = 0;
  std::string err;
  // std::stod accepts these without throwing; the strict parser must not.
  EXPECT_FALSE(try_parse_double("inf", d, err));
  EXPECT_EQ(err, "not a finite number");
  EXPECT_FALSE(try_parse_double("nan", d, err));
  EXPECT_EQ(err, "not a finite number");
}

TEST(ParseDouble, RejectsNonNumbers) {
  double d = 0;
  std::string err;
  EXPECT_FALSE(try_parse_double("abc", d, err));
  EXPECT_EQ(err, "not a number");
}

TEST(ParseU64, AcceptsDigits) {
  std::uint64_t v = 0;
  std::string err;
  EXPECT_TRUE(try_parse_u64("0", v, err));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(try_parse_u64("18446744073709551615", v, err));
  EXPECT_EQ(v, 18446744073709551615ULL);
}

TEST(ParseU64, RejectsNegative) {
  // std::stoull would wrap "-1" to 2^64-1; the whole point of the strict
  // parser is that a negative seed or count errors out loudly.
  std::uint64_t v = 0;
  std::string err;
  EXPECT_FALSE(try_parse_u64("-1", v, err));
  EXPECT_EQ(err, "negative value not allowed");
}

TEST(ParseU64, RejectsNonDigits) {
  std::uint64_t v = 0;
  std::string err;
  EXPECT_FALSE(try_parse_u64("", v, err));
  EXPECT_EQ(err, "empty value");
  EXPECT_FALSE(try_parse_u64("+1", v, err));
  EXPECT_NE(err.find("invalid character"), std::string::npos);
  EXPECT_FALSE(try_parse_u64("12a", v, err));
  EXPECT_NE(err.find("invalid character"), std::string::npos);
  EXPECT_FALSE(try_parse_u64(" 1", v, err));  // stoull would skip the space
  EXPECT_NE(err.find("invalid character"), std::string::npos);
}

TEST(ParseU64, RejectsOverflow) {
  std::uint64_t v = 0;
  std::string err;
  EXPECT_FALSE(try_parse_u64("18446744073709551616", v, err));
  EXPECT_EQ(err, "out of range for a 64-bit unsigned integer");
}

TEST(ParseInt, EnforcesMaximum) {
  int n = 0;
  std::string err;
  EXPECT_TRUE(try_parse_int("1000000000", n, err));
  EXPECT_EQ(n, 1'000'000'000);
  EXPECT_FALSE(try_parse_int("1000000001", n, err));
  EXPECT_NE(err.find("exceeds maximum"), std::string::npos);
  EXPECT_TRUE(try_parse_int("8", n, err, 8));
  EXPECT_FALSE(try_parse_int("9", n, err, 8));
}

TEST(ParseThrowing, MessageNamesTheInput) {
  EXPECT_DOUBLE_EQ(parse_double_or_throw("lat", "2.5"), 2.5);
  EXPECT_EQ(parse_u64_or_throw("seed", "42"), 42u);
  try {
    parse_double_or_throw("lat", "1e999");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("lat"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  try {
    parse_u64_or_throw("fault seed", "-1");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos);
  }
}

}  // namespace
}  // namespace spb
