#include <gtest/gtest.h>

#include "common/check.h"
#include "machine/config.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::machine {
namespace {

TEST(HypercubeMachine, ShapeAndDefaults) {
  const MachineConfig m = hypercube(6);
  EXPECT_EQ(m.p, 64);
  EXPECT_EQ(m.rows * m.cols, 64);
  EXPECT_EQ(m.topology->node_count(), 64);
  EXPECT_EQ(m.topology->slots_per_node(), 6);
  for (Rank r = 0; r < m.p; r += 7) EXPECT_EQ(m.mapping.node_of(r), r);
  EXPECT_GT(m.mpi_extra_us, 0);
  EXPECT_THROW(hypercube(0), CheckError);
  EXPECT_THROW(hypercube(11), CheckError);
}

TEST(HypercubeMachine, EveryAlgorithmRunsOnIt) {
  const MachineConfig m = hypercube(4);
  for (const auto& alg : stop::all_algorithms()) {
    const stop::Problem pb =
        stop::make_problem(m, dist::Kind::kEqual, 5, 1024);
    EXPECT_NO_THROW(stop::run(*alg, pb)) << alg->name();
  }
}

TEST(HypercubeMachine, BrLinFirstIterationHasNoStalls) {
  // Every halving pair is a dedicated dimension exchange: with all ranks
  // as sources, the network must report zero reservation stalls for the
  // whole Br_Lin run.
  const MachineConfig m = hypercube(5);
  const stop::Problem pb = stop::make_problem(m, dist::Kind::kEqual, 32, 8192);
  const stop::RunResult r = stop::run(*stop::make_br_lin(), pb);
  EXPECT_DOUBLE_EQ(r.outcome.network.total_stall_us, 0.0);
}

}  // namespace
}  // namespace spb::machine
