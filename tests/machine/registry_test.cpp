// The machine registry: the `--machine list` catalogue is golden-pinned
// (every CLI prints this byte-for-byte), every registered example spec must
// round-trip through from_name, and the unknown-spec error must enumerate
// the registered patterns.
//
// Regenerate the catalogue after an intentional registry change:
//   SPB_UPDATE_GOLDEN=1 ./test_machine --gtest_filter=Registry.*
#include "machine/registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "machine/config.h"
#include "net/topology.h"

namespace spb::machine {
namespace {

std::string what_of(const std::string& spec) {
  try {
    from_name(spec);
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected '" << spec << "' to be rejected";
  return "";
}

TEST(Registry, DescribeMatchesGolden) {
  const std::string got = Registry::instance().describe();
  const std::string golden =
      std::string(SPB_TEST_DATA_DIR) + "/golden/machine_list.txt";
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test binary.
  if (std::getenv("SPB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden);
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    out << got;
    GTEST_SKIP() << "golden updated: " << golden;
  }
  std::ifstream in(golden);
  ASSERT_TRUE(in.good()) << "missing golden " << golden
                         << " (run with SPB_UPDATE_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "--machine list output changed; regenerate with SPB_UPDATE_GOLDEN=1 "
         "if intentional";
}

TEST(Registry, EveryEntryHasDescriptionAndExample) {
  ASSERT_FALSE(Registry::instance().entries().empty());
  for (const MachineSpec& e : Registry::instance().entries()) {
    EXPECT_FALSE(e.pattern.empty());
    EXPECT_FALSE(e.description.empty()) << e.pattern;
    EXPECT_FALSE(e.example.empty()) << e.pattern;
    EXPECT_FALSE(e.prefix.empty()) << e.pattern;
    EXPECT_EQ(e.pattern.rfind(e.prefix, 0), 0u)
        << e.pattern << ": pattern must start with its prefix";
  }
}

TEST(Registry, ExampleSpecsRoundTripThroughFromName) {
  for (const MachineSpec& e : Registry::instance().entries()) {
    const MachineConfig m = from_name(e.example);
    EXPECT_GE(m.p, 1) << e.example;
    EXPECT_FALSE(m.name.empty()) << e.example;
    EXPECT_NE(m.topology, nullptr) << e.example;
    EXPECT_EQ(m.rows * m.cols, m.p) << e.example;
  }
}

TEST(Registry, UnknownSpecEnumeratesEveryPattern) {
  const std::string msg = what_of("vax11x780");
  EXPECT_NE(msg.find("unknown machine 'vax11x780'"), std::string::npos) << msg;
  for (const MachineSpec& e : Registry::instance().entries()) {
    EXPECT_NE(msg.find(e.pattern), std::string::npos)
        << "error must list pattern " << e.pattern << ": " << msg;
    EXPECT_NE(msg.find(e.example), std::string::npos)
        << "error must list example " << e.example << ": " << msg;
  }
}

TEST(Registry, GrammarListsEveryPatternAndList) {
  const std::string g = Registry::instance().grammar();
  for (const MachineSpec& e : Registry::instance().entries())
    EXPECT_NE(g.find(e.pattern), std::string::npos) << g;
  EXPECT_NE(g.find("list"), std::string::npos) << g;
}

TEST(Registry, NoPrefixShadowsALaterEntry) {
  // parse() dispatches on the *first* matching prefix, so an entry whose
  // prefix is a prefix of a later entry's prefix would silently claim that
  // entry's specs (a hypothetical "t3" before "t3d", or "torus" before a
  // future "torus3d").  The ctor SPB_REQUIREs this; mirror the invariant
  // here so a failure names the offending pair even if someone relaxes
  // the ctor check.
  const auto& entries = Registry::instance().entries();
  for (std::size_t a = 0; a < entries.size(); ++a)
    for (std::size_t b = a + 1; b < entries.size(); ++b)
      EXPECT_NE(entries[b].prefix.rfind(entries[a].prefix, 0), 0u)
          << "prefix '" << entries[a].prefix << "' (entry " << a
          << ") shadows later prefix '" << entries[b].prefix << "' (entry "
          << b << ")";
}

TEST(Registry, SimilarPrefixesDispatchToTheRightParser) {
  // The torus/t3d/cluster trio all start differently today, but their
  // specs are the ones a shadowing bug would mis-route (t3d512 parsed as
  // a torus, cluster8x4 as something 2-D).  Pin the exact machines.
  const MachineConfig t3d512 = from_name("t3d512");
  EXPECT_EQ(t3d512.p, 512);
  EXPECT_NE(t3d512.name.find("t3d"), std::string::npos) << t3d512.name;
  EXPECT_EQ(t3d512.topology->name(), "torus3d 8x8x8")
      << "t3d lives on the dedicated 512-node 3-D torus";

  const MachineConfig torus = from_name("torus4x4x4x4");
  EXPECT_EQ(torus.p, 256);
  EXPECT_EQ(torus.topology->name(), "torus 4x4x4x4");

  const MachineConfig cluster = from_name("cluster8x4");
  EXPECT_EQ(cluster.p, 32);
  EXPECT_EQ(cluster.cores_per_node, 4);
  EXPECT_EQ(cluster.topology->name(), "cluster 8x4");
}

TEST(Registry, MalformedParametersNameTheField) {
  EXPECT_NE(what_of("paragon8").find("want paragonRxC"), std::string::npos);
  EXPECT_NE(what_of("torus4xq").find("torus dimensions"), std::string::npos);
  EXPECT_NE(what_of("cluster8").find("want clusterNxM"), std::string::npos);
  EXPECT_NE(what_of("t3d64:x").find("scatter seed"), std::string::npos);
  EXPECT_NE(what_of("hypercube").find("dimension count"), std::string::npos);
}

TEST(TorusMachine, ShapeAndConstants) {
  const MachineConfig m = from_name("torus4x4x4x4");
  EXPECT_EQ(m.p, 256);
  EXPECT_EQ(m.rows * m.cols, 256);
  EXPECT_LE(m.rows, m.cols);
  EXPECT_EQ(m.topology->name(), "torus 4x4x4x4");
  EXPECT_EQ(m.topology->node_count(), 256);
  EXPECT_EQ(m.cores_per_node, 0) << "flat machine";
  // Dedicated machine: identity placement, T3D-class wire.
  for (Rank r = 0; r < m.p; r += 37) EXPECT_EQ(m.mapping.node_of(r), r);
  EXPECT_GT(m.net.bytes_per_us, paragon(8, 8).net.bytes_per_us);
  // The registry and the factory agree.
  const MachineConfig direct = torus({4, 4, 4, 4});
  EXPECT_EQ(direct.name, m.name);
  EXPECT_EQ(direct.p, m.p);
}

TEST(ClusterMachine, TwoTierShape) {
  const MachineConfig m = from_name("cluster8x4");
  EXPECT_EQ(m.p, 32);
  EXPECT_EQ(m.rows, 8) << "one logical row per node";
  EXPECT_EQ(m.cols, 4);
  EXPECT_EQ(m.cores_per_node, 4);
  EXPECT_GT(m.inter_node_bw_scale, 0.0);
  EXPECT_LT(m.inter_node_bw_scale, 1.0) << "inter-node tier must be slower";
  EXPECT_EQ(m.topology->name(), "cluster 8x4");
  const auto* cluster = dynamic_cast<const net::Cluster*>(m.topology.get());
  ASSERT_NE(cluster, nullptr);
  EXPECT_DOUBLE_EQ(cluster->mesh_bw_scale(), m.inter_node_bw_scale);
}

}  // namespace
}  // namespace spb::machine
