#include "machine/config.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "net/topology.h"

namespace spb::machine {
namespace {

TEST(Paragon, ShapeAndMapping) {
  const MachineConfig m = paragon(10, 12);
  EXPECT_EQ(m.p, 120);
  EXPECT_EQ(m.rows, 10);
  EXPECT_EQ(m.cols, 12);
  EXPECT_EQ(m.topology->node_count(), 120);
  // Dedicated submesh: rank i on node i.
  for (Rank r = 0; r < m.p; r += 17) EXPECT_EQ(m.mapping.node_of(r), r);
  EXPECT_GT(m.mpi_extra_us, 0) << "MPI must cost extra on the Paragon";
  EXPECT_EQ(m.bcast_segment_bytes, 0u) << "NX 2-Step is store-and-forward";
}

TEST(T3D, ShapeAndMapping) {
  const MachineConfig m = t3d(128);
  EXPECT_EQ(m.p, 128);
  EXPECT_EQ(m.rows * m.cols, 128);
  EXPECT_LE(m.rows, m.cols);
  EXPECT_EQ(m.topology->node_count(), 512) << "PSC 512-node torus";
  EXPECT_EQ(m.mpi_extra_us, 0) << "everything on the T3D is MPI already";
  EXPECT_GT(m.bcast_segment_bytes, 0u) << "vendor collective pipelines";
  // Default placement: scattered over the torus, not identity.
  int identity_hits = 0;
  for (Rank r = 0; r < m.p; ++r)
    if (m.mapping.node_of(r) == r) ++identity_hits;
  EXPECT_LT(identity_hits, 8);
}

TEST(T3D, ScatterSeedControlsPlacement) {
  const MachineConfig a = t3d(64, 1);
  const MachineConfig b = t3d(64, 2);
  EXPECT_NE(a.mapping.table(), b.mapping.table());
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.net.bytes_per_us, b.net.bytes_per_us);
  // Seed 0: the contiguous sub-brick variant.
  const MachineConfig c = t3d(64, 0);
  for (Rank r = 0; r < c.p; r += 13) EXPECT_EQ(c.mapping.node_of(r), r);
}

TEST(T3D, FasterWireThanParagon) {
  // 300 MB/s channels vs 200 MB/s wire (lower sustained): the paper's
  // "larger communication bandwidth".
  EXPECT_GT(t3d(64).net.bytes_per_us, paragon(8, 8).net.bytes_per_us);
}

TEST(BalancedFactors, MostBalancedSplit) {
  int r = 0;
  int c = 0;
  balanced_factors(128, r, c);
  EXPECT_EQ(r, 8);
  EXPECT_EQ(c, 16);
  balanced_factors(100, r, c);
  EXPECT_EQ(r, 10);
  EXPECT_EQ(c, 10);
  balanced_factors(7, r, c);
  EXPECT_EQ(r, 1);
  EXPECT_EQ(c, 7);
  balanced_factors(1, r, c);
  EXPECT_EQ(r, 1);
  EXPECT_EQ(c, 1);
}

TEST(MakeRuntime, MpiFlavorAddsOverheadOnParagonOnly) {
  const MachineConfig pg = paragon(4, 4);
  mp::Runtime nx = pg.make_runtime(false);
  mp::Runtime mpi = pg.make_runtime(true);
  EXPECT_DOUBLE_EQ(nx.comm_params().mpi_extra_us, 0.0);
  EXPECT_DOUBLE_EQ(mpi.comm_params().mpi_extra_us, pg.mpi_extra_us);

  const MachineConfig td = t3d(16);
  mp::Runtime t = td.make_runtime(true);
  EXPECT_DOUBLE_EQ(t.comm_params().mpi_extra_us, 0.0);
}

TEST(Machine, InvalidSizesRejected) {
  EXPECT_THROW(paragon(0, 4), CheckError);
  EXPECT_THROW(t3d(0), CheckError);
  EXPECT_THROW(t3d(513), CheckError);
}

}  // namespace
}  // namespace spb::machine
