// Unified bench CLI parser (bench/options.h): flag coverage, strict value
// parsing, extras, positionals, and the *_or() default folding every bench
// relies on.
#include "options.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "sweep_runner.h"

namespace spb::bench {
namespace {

std::string parse(std::vector<const char*> argv, Options& out,
                  const ParseSpec& spec = {}) {
  argv.insert(argv.begin(), "bench");
  return parse_options_into(static_cast<int>(argv.size()), argv.data(), spec,
                            out);
}

TEST(BenchOptions, DefaultsAreAllUnset) {
  Options o;
  ASSERT_EQ(parse({}, o), "");
  EXPECT_FALSE(o.machine.has_value());
  EXPECT_FALSE(o.dist.has_value());
  EXPECT_FALSE(o.sources.has_value());
  EXPECT_FALSE(o.len.has_value());
  EXPECT_FALSE(o.seed.has_value());
  EXPECT_FALSE(o.reps.has_value());
  EXPECT_TRUE(o.out.empty());
  EXPECT_FALSE(o.jobs_set);
  EXPECT_GE(o.jobs, 1);
}

TEST(BenchOptions, ParsesEveryUnifiedFlag) {
  Options o;
  ASSERT_EQ(parse({"--machine", "paragon8x8", "--dist", "R", "--sources",
                   "8", "--len", "1024", "--seed", "7", "--reps", "3",
                   "--jobs", "2", "--out", "x.csv"},
                  o),
            "");
  EXPECT_EQ(o.machine.value(), "paragon8x8");
  EXPECT_EQ(o.dist.value(), "R");
  EXPECT_EQ(o.sources.value(), 8);
  EXPECT_EQ(o.len.value(), 1024u);
  EXPECT_EQ(o.seed.value(), 7u);
  EXPECT_EQ(o.reps.value(), 3);
  EXPECT_EQ(o.jobs, 2);
  EXPECT_TRUE(o.jobs_set);
  EXPECT_EQ(o.out, "x.csv");
}

TEST(BenchOptions, HelpShortCircuits) {
  Options o;
  EXPECT_EQ(parse({"--help"}, o), "help");
  EXPECT_EQ(parse({"-h"}, o), "help");
  EXPECT_EQ(parse({"--machine", "t3d64", "--help"}, o), "help");
}

TEST(BenchOptions, RejectsJunkValuesAndUnknownFlags) {
  Options o;
  EXPECT_NE(parse({"--sources", "eight"}, o), "");
  EXPECT_NE(parse({"--len", "4k"}, o), "");
  EXPECT_NE(parse({"--seed", "-1"}, o), "");
  EXPECT_NE(parse({"--reps", "0"}, o), "");
  EXPECT_NE(parse({"--jobs"}, o), "");  // missing value
  EXPECT_NE(parse({"--bogus"}, o), "");
  EXPECT_NE(parse({"stray"}, o), "");  // positional not allowed by default
}

TEST(BenchOptions, JobsZeroMeansAllCores) {
  Options o;
  ASSERT_EQ(parse({"--jobs", "0"}, o), "");
  EXPECT_EQ(o.jobs, SweepRunner::hardware_jobs());
  EXPECT_TRUE(o.jobs_set);
}

TEST(BenchOptions, ExtrasToggleAndValueFlags) {
  bool quick = false;
  std::string base;
  ParseSpec spec;
  spec.extras = {{.name = "--quick", .toggle = &quick, .help = "fast"},
                 {.name = "--base", .value = &base, .help = "baseline"}};
  Options o;
  ASSERT_EQ(parse({"--quick", "--base", "old.json", "--len", "64"}, o, spec),
            "");
  EXPECT_TRUE(quick);
  EXPECT_EQ(base, "old.json");
  EXPECT_EQ(o.len.value(), 64u);
}

TEST(BenchOptions, PositionalWhenAllowed) {
  ParseSpec spec;
  spec.allow_positional = true;
  spec.positional_help = "[dir]";
  Options o;
  ASSERT_EQ(parse({"results", "--jobs", "1"}, o, spec), "");
  EXPECT_EQ(o.positional, "results");
  // A second bare argument is still an error.
  EXPECT_NE(parse({"a", "b"}, o, spec), "");
}

TEST(BenchOptions, OrHelpersFoldDefaults) {
  Options o;
  ASSERT_EQ(parse({"--machine", "paragon4x4", "--dist", "C"}, o), "");
  const auto m = o.machine_or(machine::paragon(10, 10));
  EXPECT_EQ(m.p, 16);
  EXPECT_EQ(o.dist_or(dist::Kind::kEqual), dist::Kind::kColumn);
  EXPECT_EQ(o.sources_or(5), 5);
  EXPECT_EQ(o.len_or(4096), 4096u);
  EXPECT_EQ(o.seed_or(42), 42u);
  EXPECT_EQ(o.reps_or(2), 2);
  EXPECT_EQ(o.out_or("default.csv"), "default.csv");

  Options unset;
  const auto fb = unset.machine_or(machine::paragon(2, 2));
  EXPECT_EQ(fb.p, 4);
}

TEST(BenchOptions, BadMachineOrDistThrowOnFold) {
  Options o;
  ASSERT_EQ(parse({"--machine", "cray99", "--dist", "Z"}, o), "");
  EXPECT_THROW(o.machine_or(machine::paragon(2, 2)), CheckError);
  EXPECT_THROW(o.dist_or(dist::Kind::kEqual), CheckError);
}

TEST(BenchOptions, UsageTextListsEverything) {
  ParseSpec spec;
  spec.description = "Figure 3: algorithms vs source count";
  bool quick = false;
  spec.extras = {{.name = "--quick", .toggle = &quick, .help = "fast"}};
  const std::string u = usage_text("fig03", spec);
  for (const char* needle :
       {"usage: fig03", "Figure 3", "--machine", "--dist", "--sources",
        "--len", "--seed", "--reps", "--jobs", "--out", "--quick", "--help",
        "Swept axes"}) {
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace spb::bench
