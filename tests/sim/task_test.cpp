#include "sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace spb::sim {
namespace {

/// Awaitable that parks the coroutine and resumes it via the simulator
/// after `delay` — the pattern the mp layer's awaiters use.
struct Sleep {
  Simulator* sim;
  double delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim->after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

Task sleeper(Simulator& sim, std::vector<double>& log, double step, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Sleep{&sim, step};
    log.push_back(sim.now());
  }
}

TEST(Task, LazyUntilStarted) {
  Simulator sim;
  std::vector<double> log;
  Task t = sleeper(sim, log, 1.0, 3);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  EXPECT_TRUE(log.empty());  // body has not run
  bool done = false;
  t.start([&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(log, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Task, TwoTasksInterleave) {
  Simulator sim;
  std::vector<double> a_log;
  std::vector<double> b_log;
  Task a = sleeper(sim, a_log, 2.0, 2);
  Task b = sleeper(sim, b_log, 3.0, 2);
  a.start(nullptr);
  b.start(nullptr);
  sim.run();
  EXPECT_EQ(a_log, (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(b_log, (std::vector<double>{3.0, 6.0}));
}

Task inner(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await Sleep{&sim, 1.0};
  log.push_back(2);
}

Task outer(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await inner(sim, log);
  log.push_back(3);
  co_await inner(sim, log);  // a second child reuses nothing
  log.push_back(4);
}

TEST(Task, NestedTasksRunInOrder) {
  Simulator sim;
  std::vector<int> log;
  Task t = outer(sim, log);
  t.start(nullptr);
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 1, 2, 4}));
  EXPECT_TRUE(t.done());
}

Task deep(Simulator& sim, int depth) {
  if (depth == 0) {
    co_await Sleep{&sim, 1.0};
    co_return;
  }
  co_await deep(sim, depth - 1);
}

TEST(Task, DeepNestingDoesNotOverflow) {
  Simulator sim;
  // Symmetric transfer: deep chains must not grow the host stack.  ASan
  // instrumentation defeats the guaranteed tail call behind symmetric
  // transfer, so the sanitized build probes a shallower chain.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr int kDepth = 150;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  constexpr int kDepth = 150;
#else
  constexpr int kDepth = 20000;
#endif
#else
  constexpr int kDepth = 20000;
#endif
  Task t = deep(sim, kDepth);
  t.start(nullptr);
  sim.run();
  EXPECT_TRUE(t.done());
}

Task thrower(Simulator& sim) {
  co_await Sleep{&sim, 1.0};
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionCapturedAndRethrown) {
  Simulator sim;
  Task t = thrower(sim);
  t.start(nullptr);
  sim.run();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

Task rethrows_from_child(Simulator& sim, std::vector<int>& log) {
  try {
    co_await thrower(sim);
    log.push_back(-1);  // unreachable
  } catch (const std::runtime_error&) {
    log.push_back(42);
  }
}

TEST(Task, ChildExceptionPropagatesToAwaiter) {
  Simulator sim;
  std::vector<int> log;
  Task t = rethrows_from_child(sim, log);
  t.start(nullptr);
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{42}));
  // Handled inside the coroutine: nothing left to rethrow.
  t.rethrow_if_failed();
}

TEST(Task, StartTwiceRejected) {
  Simulator sim;
  std::vector<double> log;
  Task t = sleeper(sim, log, 1.0, 1);
  t.start(nullptr);
  sim.run();
  EXPECT_THROW(t.start(nullptr), CheckError);
}

TEST(Task, MoveTransfersOwnership) {
  Simulator sim;
  std::vector<double> log;
  Task t = sleeper(sim, log, 1.0, 1);
  Task u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(u.valid());
  u.start(nullptr);
  sim.run();
  EXPECT_TRUE(u.done());
}

TEST(Task, DestroyedWithoutStartLeaksNothing) {
  Simulator sim;
  std::vector<double> log;
  { Task t = sleeper(sim, log, 1.0, 1); }  // dropped unstarted
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace spb::sim
