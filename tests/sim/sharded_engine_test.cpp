// ShardedEngine: windowed drains, barrier staging, lookahead contract,
// determinism across worker-thread counts, and error propagation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "sim/sharded.h"

namespace spb::sim {
namespace {

TEST(ShardedEngine, DrainsEachShardInTimeOrder) {
  ShardedEngine eng(2, 10.0, 1);
  std::vector<std::string> log;
  eng.at(5.0, 0, [&log]() { log.push_back("a@5"); });
  eng.at(1.0, 0, [&log]() { log.push_back("a@1"); });
  eng.at(3.0, 1, [&log]() { log.push_back("b@3"); });
  const SimTime end = eng.run({});
  // Within a shard strictly time-ordered; shards drain independently but
  // inline mode visits them in index order per window.
  EXPECT_EQ(log, (std::vector<std::string>{"a@1", "a@5", "b@3"}));
  EXPECT_DOUBLE_EQ(end, 5.0);
  EXPECT_EQ(eng.events_executed(), 3u);
}

TEST(ShardedEngine, EqualTimesKeepInsertionOrderWithinShard) {
  ShardedEngine eng(1, 100.0, 1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.at(1.0, 0, [&order, i]() { order.push_back(i); });
  eng.run({});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ShardedEngine, InWindowEventsMaySpawnIntoOwnShardOnly) {
  ShardedEngine eng(2, 10.0, 1);
  std::vector<std::string> log;
  eng.at(0.0, 0, [&eng, &log]() {
    eng.at(2.0, 0, [&log]() { log.push_back("child"); });
    log.push_back("parent");
  });
  eng.run({});
  EXPECT_EQ(log, (std::vector<std::string>{"parent", "child"}));
}

TEST(ShardedEngine, CrossShardPushInsideWindowIsRejected) {
  ShardedEngine eng(2, 10.0, 1);
  bool threw = false;
  eng.at(0.0, 0, [&eng, &threw]() {
    try {
      eng.at(5.0, 1, []() {});
    } catch (const CheckError&) {
      threw = true;
    }
  });
  eng.run({});
  EXPECT_TRUE(threw);
}

TEST(ShardedEngine, BarrierRunsBetweenWindowsAndMayPushCrossShard) {
  // One event at t=0 on shard 0; the first barrier (horizon 5) stages a
  // shard-1 event at exactly the horizon — the earliest legal time.
  ShardedEngine eng(2, 5.0, 1);
  std::vector<std::string> log;
  eng.at(0.0, 0, [&log]() { log.push_back("seed"); });
  bool staged = false;
  eng.run([&]() {
    if (!staged) {
      staged = true;
      eng.at(5.0, 1, [&log]() { log.push_back("staged"); });
    }
  });
  EXPECT_EQ(log, (std::vector<std::string>{"seed", "staged"}));
  EXPECT_EQ(eng.stats().windows, 2u);
}

TEST(ShardedEngine, BarrierPushBelowHorizonIsRejected) {
  ShardedEngine eng(2, 5.0, 1);
  eng.at(0.0, 0, []() {});
  bool threw = false;
  bool first = true;
  eng.run([&]() {
    if (!first) return;
    first = false;
    try {
      eng.at(4.999, 1, []() {});  // window was [0, 5): too early
    } catch (const CheckError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(ShardedEngine, IdenticalResultsAcrossThreadCounts) {
  // Same event program on 1, 2 and 8 workers; per-shard execution logs
  // must match exactly (the engine's determinism contract).
  auto trace_of = [](int threads) {
    ShardedEngine eng(4, 7.0, threads);
    std::vector<std::vector<double>> per_shard(4);
    for (int s = 0; s < 4; ++s) {
      for (int k = 0; k < 50; ++k) {
        const double t = 0.5 * k + 0.25 * s;
        eng.at(t, s, [&per_shard, s, t]() {
          per_shard[static_cast<std::size_t>(s)].push_back(t);
        });
      }
    }
    eng.run({});
    return per_shard;
  };
  const auto t1 = trace_of(1);
  EXPECT_EQ(t1, trace_of(2));
  EXPECT_EQ(t1, trace_of(8));
}

TEST(ShardedEngine, StatsCountBusyAndIdleShardWindows) {
  ShardedEngine eng(2, 10.0, 1);
  eng.at(0.0, 0, []() {});
  eng.at(1.0, 0, []() {});  // same window, same shard; shard 1 idles
  eng.run({});
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.windows, 1u);
  EXPECT_EQ(st.idle_shard_windows, 1u);
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_EQ(st.shards[0].events, 2u);
  EXPECT_EQ(st.shards[0].busy_windows, 1u);
  EXPECT_EQ(st.shards[1].events, 0u);
}

TEST(ShardedEngine, EventExceptionAbortsTheRun) {
  ShardedEngine eng(2, 10.0, 2);
  eng.at(0.0, 1, []() { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run({}), std::runtime_error);
}

TEST(ShardedEngine, RunIsOneShot) {
  ShardedEngine eng(1, 1.0, 1);
  eng.run({});
  EXPECT_THROW(eng.run({}), CheckError);
}

TEST(ShardedEngine, RejectsNonPositiveWindow) {
  EXPECT_THROW(ShardedEngine(2, 0.0, 1), CheckError);
  EXPECT_THROW(ShardedEngine(2, -1.0, 1), CheckError);
}

}  // namespace
}  // namespace spb::sim
