// ShardedEngine: windowed drains, barrier staging, lookahead contract,
// determinism across worker-thread counts, and error propagation; since
// PR 10 also the per-region sub-windows (set_cross_delays / note_stage /
// safe_horizon) and the direct per-shard busy/idle accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/sharded.h"

namespace spb::sim {
namespace {

TEST(ShardedEngine, DrainsEachShardInTimeOrder) {
  ShardedEngine eng(2, 10.0, 1);
  std::vector<std::string> log;
  eng.at(5.0, 0, [&log]() { log.push_back("a@5"); });
  eng.at(1.0, 0, [&log]() { log.push_back("a@1"); });
  eng.at(3.0, 1, [&log]() { log.push_back("b@3"); });
  const SimTime end = eng.run({});
  // Within a shard strictly time-ordered; shards drain independently but
  // inline mode visits them in index order per window.
  EXPECT_EQ(log, (std::vector<std::string>{"a@1", "a@5", "b@3"}));
  EXPECT_DOUBLE_EQ(end, 5.0);
  EXPECT_EQ(eng.events_executed(), 3u);
}

TEST(ShardedEngine, EqualTimesKeepInsertionOrderWithinShard) {
  ShardedEngine eng(1, 100.0, 1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.at(1.0, 0, [&order, i]() { order.push_back(i); });
  eng.run({});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ShardedEngine, InWindowEventsMaySpawnIntoOwnShardOnly) {
  ShardedEngine eng(2, 10.0, 1);
  std::vector<std::string> log;
  eng.at(0.0, 0, [&eng, &log]() {
    eng.at(2.0, 0, [&log]() { log.push_back("child"); });
    log.push_back("parent");
  });
  eng.run({});
  EXPECT_EQ(log, (std::vector<std::string>{"parent", "child"}));
}

TEST(ShardedEngine, CrossShardPushInsideWindowIsRejected) {
  ShardedEngine eng(2, 10.0, 1);
  bool threw = false;
  eng.at(0.0, 0, [&eng, &threw]() {
    try {
      eng.at(5.0, 1, []() {});
    } catch (const CheckError&) {
      threw = true;
    }
  });
  eng.run({});
  EXPECT_TRUE(threw);
}

TEST(ShardedEngine, BarrierRunsBetweenWindowsAndMayPushCrossShard) {
  // One event at t=0 on shard 0; the first barrier (horizon 5) stages a
  // shard-1 event at exactly the horizon — the earliest legal time.
  ShardedEngine eng(2, 5.0, 1);
  std::vector<std::string> log;
  eng.at(0.0, 0, [&log]() { log.push_back("seed"); });
  bool staged = false;
  eng.run([&]() {
    if (!staged) {
      staged = true;
      eng.at(5.0, 1, [&log]() { log.push_back("staged"); });
    }
  });
  EXPECT_EQ(log, (std::vector<std::string>{"seed", "staged"}));
  EXPECT_EQ(eng.stats().windows, 2u);
}

TEST(ShardedEngine, BarrierPushBelowHorizonIsRejected) {
  ShardedEngine eng(2, 5.0, 1);
  eng.at(0.0, 0, []() {});
  bool threw = false;
  bool first = true;
  eng.run([&]() {
    if (!first) return;
    first = false;
    try {
      eng.at(4.999, 1, []() {});  // window was [0, 5): too early
    } catch (const CheckError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

TEST(ShardedEngine, IdenticalResultsAcrossThreadCounts) {
  // Same event program on 1, 2 and 8 workers; per-shard execution logs
  // must match exactly (the engine's determinism contract).
  auto trace_of = [](int threads) {
    ShardedEngine eng(4, 7.0, threads);
    std::vector<std::vector<double>> per_shard(4);
    for (int s = 0; s < 4; ++s) {
      for (int k = 0; k < 50; ++k) {
        const double t = 0.5 * k + 0.25 * s;
        eng.at(t, s, [&per_shard, s, t]() {
          per_shard[static_cast<std::size_t>(s)].push_back(t);
        });
      }
    }
    eng.run({});
    return per_shard;
  };
  const auto t1 = trace_of(1);
  EXPECT_EQ(t1, trace_of(2));
  EXPECT_EQ(t1, trace_of(8));
}

TEST(ShardedEngine, StatsCountBusyAndIdleShardWindows) {
  ShardedEngine eng(2, 10.0, 1);
  eng.at(0.0, 0, []() {});
  eng.at(1.0, 0, []() {});  // same window, same shard; shard 1 idles
  eng.run({});
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.windows, 1u);
  EXPECT_EQ(st.idle_shard_windows, 1u);
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_EQ(st.shards[0].events, 2u);
  EXPECT_EQ(st.shards[0].busy_windows, 1u);
  EXPECT_EQ(st.shards[1].events, 0u);
}

TEST(ShardedEngine, EventExceptionAbortsTheRun) {
  ShardedEngine eng(2, 10.0, 2);
  eng.at(0.0, 1, []() { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run({}), std::runtime_error);
}

TEST(ShardedEngine, RunIsOneShot) {
  ShardedEngine eng(1, 1.0, 1);
  eng.run({});
  EXPECT_THROW(eng.run({}), CheckError);
}

TEST(ShardedEngine, RejectsNonPositiveWindow) {
  EXPECT_THROW(ShardedEngine(2, 0.0, 1), CheckError);
  EXPECT_THROW(ShardedEngine(2, -1.0, 1), CheckError);
}

TEST(ShardedEngine, ThreadsClampToShardCount) {
  const ShardedEngine eng(4, 1.0, 64);
  EXPECT_EQ(eng.threads(), 4);
}

TEST(ShardedEngine, CrossDelaysLetIndependentShardsRunAhead) {
  // Two shards that never talk.  With a wide cross-delay matrix each
  // drains its whole queue in a single window; with PR 7's uniform
  // window_us delays the same program needs many windows.
  const auto windows_of = [](bool wide) {
    ShardedEngine eng(2, 5.0, 1);
    if (wide) eng.set_cross_delays({5.0, 500.0, 500.0, 5.0});
    for (int k = 0; k < 10; ++k) {
      eng.at(10.0 * k, 0, []() {});
      eng.at(10.0 * k + 1.0, 1, []() {});
    }
    eng.run({});
    EXPECT_EQ(eng.events_executed(), 20u);
    return eng.stats().windows;
  };
  EXPECT_EQ(windows_of(true), 1u);
  EXPECT_GT(windows_of(false), 1u);
}

TEST(ShardedEngine, SetCrossDelaysValidatesShapeAndFloor) {
  ShardedEngine eng(2, 5.0, 1);
  // Wrong size.
  EXPECT_THROW(eng.set_cross_delays({5.0}), CheckError);
  // Off-diagonal entry below the self lookahead.
  EXPECT_THROW(eng.set_cross_delays({5.0, 4.999, 5.0, 5.0}), CheckError);
  // Diagonal entries are ignored (forced to window_us), so zeros are fine.
  eng.set_cross_delays({0.0, 10.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(eng.min_cross_delay_us(), 10.0);
  EXPECT_DOUBLE_EQ(eng.max_cross_delay_us(), 10.0);
  eng.run({});
  EXPECT_THROW(eng.set_cross_delays({0.0, 10.0, 10.0, 0.0}), CheckError);
}

TEST(ShardedEngine, DelayMatrixIsClosedUnderChaining) {
  // Direct 0 -> 2 claims 100 us, but effects can chain through shard 1 in
  // 10 + 10: the planner must use the min-plus closure, not the raw entry.
  ShardedEngine eng(3, 1.0, 1);
  eng.set_cross_delays({1.0, 10.0, 100.0,    //
                        10.0, 1.0, 10.0,     //
                        100.0, 10.0, 1.0});
  EXPECT_DOUBLE_EQ(eng.min_cross_delay_us(), 10.0);
  EXPECT_DOUBLE_EQ(eng.max_cross_delay_us(), 20.0);
}

TEST(ShardedEngine, NoteStageCapsTheStagingShardsWindow) {
  // The wide delays would let shard 0 drain all three events at once, but
  // staging a transfer at t=0 caps its window at initiate + window_us, so
  // the t=6 event must wait for the window after the barrier.
  ShardedEngine eng(2, 5.0, 1);
  eng.set_cross_delays({5.0, 100.0, 100.0, 5.0});
  std::vector<std::string> log;
  eng.at(0.0, 0, [&eng, &log]() {
    eng.note_stage(0.0);
    log.push_back("stage@0");
  });
  eng.at(3.0, 0, [&log]() { log.push_back("e@3"); });
  eng.at(6.0, 0, [&log]() { log.push_back("e@6"); });
  eng.run([&log]() { log.push_back("barrier"); });
  EXPECT_EQ(log, (std::vector<std::string>{"stage@0", "e@3", "barrier",
                                           "e@6", "barrier"}));
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.windows, 2u);
  EXPECT_EQ(st.staged_xfers, 1u);
  EXPECT_EQ(st.held_xfers, 0u);  // initiate 0 < first safe horizon
}

TEST(ShardedEngine, SafeHorizonHoldsLateStagesForALaterBarrier) {
  // Shard 0 stages at t=18 in a window where shard 1 only reached t=6:
  // the first barrier's safe horizon is 6, so the t=18 transfer must be
  // held and applied by the *second* barrier.  The test barrier mimics
  // the runtime's hold-back rule: apply initiate < safe_horizon(), keep
  // the rest.
  struct Xfer {
    double initiate;
    int from;
    int to;
  };
  ShardedEngine eng(2, 5.0, 1);
  eng.set_cross_delays({5.0, 20.0, 20.0, 5.0});
  std::vector<Xfer> staged;
  std::vector<std::string> log;
  const auto stage = [&eng, &staged](double initiate, int from, int to) {
    eng.note_stage(initiate);
    staged.push_back({initiate, from, to});
  };
  eng.at(0.0, 0, [&log]() { log.push_back("s0@0"); });
  eng.at(18.0, 0, [&log, &stage]() {
    log.push_back("s0@18");
    stage(18.0, 0, 1);
  });
  eng.at(1.0, 1, [&log, &stage]() {
    log.push_back("s1@1");
    stage(1.0, 1, 0);
  });
  eng.run([&]() {
    // Canonical order: by initiation time (no ties here).
    std::sort(staged.begin(), staged.end(),
              [](const Xfer& a, const Xfer& b) {
                return a.initiate < b.initiate;
              });
    std::vector<Xfer> keep;
    for (const Xfer& x : staged) {
      if (x.initiate >= eng.safe_horizon()) {
        keep.push_back(x);
        continue;
      }
      const double land = x.initiate + 20.0;
      EXPECT_GE(land, eng.frontier(x.to));
      eng.at(land, x.to, [&log, land]() {
        log.push_back("land@" + std::to_string(static_cast<int>(land)));
      });
    }
    staged = keep;
  });
  EXPECT_EQ(log, (std::vector<std::string>{"s0@0", "s0@18", "s1@1",
                                           "land@21", "land@38"}));
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.staged_xfers, 2u);
  EXPECT_EQ(st.held_xfers, 1u);  // the t=18 stage sat out one barrier
  EXPECT_EQ(st.windows, 3u);
}

TEST(ShardedEngine, PerShardIdleCountsTileEveryWindow) {
  // Shard 0 is busy in both windows, shard 1 only in the first; the
  // reported idle count is the direct per-shard sum (the PR 10 fix — the
  // old derived `windows * shards - busy` could underflow).
  ShardedEngine eng(2, 5.0, 1);
  eng.at(0.0, 0, []() {});
  eng.at(0.0, 1, []() {});
  eng.at(7.0, 0, []() {});
  eng.run({});
  const EngineStats st = eng.stats();
  EXPECT_EQ(st.windows, 2u);
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_EQ(st.shards[0].busy_windows, 2u);
  EXPECT_EQ(st.shards[0].idle_windows, 0u);
  EXPECT_EQ(st.shards[1].busy_windows, 1u);
  EXPECT_EQ(st.shards[1].idle_windows, 1u);
  EXPECT_EQ(st.idle_shard_windows, 1u);
  for (const ShardStats& s : st.shards)
    EXPECT_EQ(s.busy_windows + s.idle_windows, st.windows);
}

TEST(ShardedEngine, SubWindowResultsIdenticalAcrossThreadCounts) {
  // The thread-count determinism contract again, now with asymmetric
  // cross delays and staging traffic in the mix.
  const auto trace_of = [](int threads) {
    ShardedEngine eng(3, 4.0, threads);
    eng.set_cross_delays({4.0, 9.0, 30.0,   //
                          9.0, 4.0, 12.0,   //
                          30.0, 12.0, 4.0});
    std::vector<std::vector<double>> per_shard(3);
    for (int s = 0; s < 3; ++s) {
      for (int k = 0; k < 40; ++k) {
        const double t = 1.5 * k + 0.5 * s;
        const bool stages = k % 7 == 0;  // periodic cross-shard traffic
        eng.at(t, s, [&eng, &per_shard, s, t, stages]() {
          per_shard[static_cast<std::size_t>(s)].push_back(t);
          if (stages) eng.note_stage(t);
        });
      }
    }
    eng.run({});
    return per_shard;
  };
  const auto t1 = trace_of(1);
  EXPECT_EQ(t1, trace_of(2));
  EXPECT_EQ(t1, trace_of(3));
}

}  // namespace
}  // namespace spb::sim
