#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace spb::sim {
namespace {

TEST(Simulator, ClockAdvancesMonotonically) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(5.0, [&] { seen.push_back(sim.now()); });
  sim.at(1.0, [&] { seen.push_back(sim.now()); });
  sim.after(2.5, [&] { seen.push_back(sim.now()); });
  const SimTime end = sim.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.5, 5.0}));
  EXPECT_DOUBLE_EQ(end, 5.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.after(1.0, [&] {
      ++fired;
      sim.after(1.0, [&] { ++fired; });
    });
  });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.at(10.0, [&] {
    // now == 10; the past is rejected.
    EXPECT_THROW(sim.at(9.0, [] {}), CheckError);
    EXPECT_THROW(sim.after(-1.0, [] {}), CheckError);
  });
  sim.run();
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunBoundedStopsEarly) {
  Simulator sim;
  int fired = 0;
  // Self-perpetuating chain; run_bounded must cut it off.
  std::function<void()> tick = [&] {
    ++fired;
    sim.after(1.0, tick);
  };
  sim.at(0.0, tick);
  EXPECT_FALSE(sim.run_bounded(100));
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, RunBoundedReportsDrained) {
  Simulator sim;
  sim.at(1.0, [] {});
  EXPECT_TRUE(sim.run_bounded(10));
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace spb::sim
