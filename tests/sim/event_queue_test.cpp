#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace spb::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) q.push(7.0, [&, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MixedTimesStableWithinTies) {
  EventQueue q;
  Rng rng(31);
  std::vector<std::pair<double, int>> popped;
  int seq = 0;
  for (int i = 0; i < 500; ++i) {
    const double t = static_cast<double>(rng.next_below(10));
    const int id = seq++;
    q.push(t, [&popped, t, id] { popped.push_back({t, id}); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(popped.size(), 500u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1].first, popped[i].first);
    if (popped[i - 1].first == popped[i].first) {
      EXPECT_LT(popped[i - 1].second, popped[i].second);
    }
  }
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), CheckError);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(0.0, nullptr), CheckError);
}

TEST(EventQueue, CountsPushes) {
  EventQueue q;
  EXPECT_EQ(q.pushed(), 0u);
  q.push(0.0, [] {});
  q.push(1.0, [] {});
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.pushed(), 2u);  // pops do not change the push count
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace spb::sim
