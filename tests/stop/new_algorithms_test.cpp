// Behavioural tests for the extension algorithms: Allgatherv_RD (modern
// recursive halving/doubling allgatherv) and Uncoord_1toAll (the paper's
// dismissed independent-broadcast approach).
#include <gtest/gtest.h>

#include "stop/algorithm.h"
#include "stop/allgatherv_rd.h"
#include "stop/run.h"
#include "stop/uncoordinated.h"
#include "stop/verify.h"

namespace spb::stop {
namespace {

TEST(AllgathervRd, IsBrLinWithoutCombining) {
  // Same merge pattern, no combining cost: strictly faster than Br_Lin
  // whenever combining costs anything, with identical message structure.
  const auto machine = machine::t3d(64);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 24, 4096);
  const RunResult modern = run(*make_allgatherv_rd(), pb);
  const RunResult br = run(*make_br_lin(), pb);
  EXPECT_LT(modern.time_us, br.time_us);
  EXPECT_EQ(modern.outcome.metrics.total_sends,
            br.outcome.metrics.total_sends);
  EXPECT_EQ(modern.outcome.metrics.total_bytes_sent,
            br.outcome.metrics.total_bytes_sent);
}

TEST(AllgathervRd, MpiFlavored) {
  EXPECT_TRUE(make_allgatherv_rd()->mpi_flavored());
  EXPECT_EQ(make_allgatherv_rd()->name(), "Allgatherv_RD");
}

TEST(AllgathervRd, CorrectAcrossDistributions) {
  const auto machine = machine::paragon(5, 7);
  for (const dist::Kind kind : dist::all_kinds()) {
    const Problem pb = make_problem(machine, kind, 13, 512);
    EXPECT_NO_THROW(run(*make_allgatherv_rd(), pb))
        << dist::kind_name(kind);
  }
}

TEST(Uncoordinated, MessageCountIsSTimesPMinusOne) {
  const auto machine = machine::paragon(4, 4);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 5, 256);
  const RunResult r = run(*make_uncoordinated(), pb);
  EXPECT_EQ(r.outcome.metrics.total_sends, 5u * 15u);
  EXPECT_EQ(r.outcome.metrics.total_recvs, 5u * 15u);
}

TEST(Uncoordinated, NeverCombines) {
  // Every message on the wire carries exactly one original.
  const auto machine = machine::paragon(4, 4);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 6, 1000);
  const RunResult r = run(*make_uncoordinated(), pb);
  EXPECT_LT(r.outcome.metrics.av_msg_lgth, 1000.0 + 64.0);
}

TEST(Uncoordinated, HandlesEdgeCases) {
  // Single source: degenerates to one broadcast tree.
  const Problem one =
      make_problem(machine::paragon(3, 3), std::vector<Rank>{4}, 128);
  const RunResult r1 = run(*make_uncoordinated(), one);
  EXPECT_EQ(r1.outcome.metrics.total_sends, 8u);
  // All sources: the full flood.
  const Problem all = make_problem(machine::paragon(2, 3),
                                   dist::Kind::kEqual, 6, 128);
  EXPECT_NO_THROW(run(*make_uncoordinated(), all));
  // Single processor: nothing to do.
  const Problem solo =
      make_problem(machine::paragon(1, 1), std::vector<Rank>{0}, 128);
  EXPECT_NO_THROW(run(*make_uncoordinated(), solo));
}

TEST(Uncoordinated, VariedLengthsWork) {
  const auto machine = machine::paragon(4, 5);
  Problem pb = make_problem(machine, dist::Kind::kRandom, 7, 2048, 3);
  pb = with_varied_lengths(std::move(pb), 0.5, 21);
  const RunResult r = run(*make_uncoordinated(), pb);
  EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok);
}

}  // namespace
}  // namespace spb::stop
