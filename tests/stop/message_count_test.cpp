// Exact message-count characterization of every algorithm — the discrete
// skeleton behind the paper's #send/rec column, pinned as equalities so a
// refactor that silently changes a communication structure fails here.
#include <gtest/gtest.h>

#include "common/math.h"
#include "dist/ideal.h"
#include "stop/allgatherv_rd.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

std::uint64_t sends_of(const AlgorithmPtr& alg, const Problem& pb) {
  return run(*alg, pb).outcome.metrics.total_sends;
}

TEST(MessageCounts, TwoStepIsGatherPlusTree) {
  // Gather: one message per non-root source; broadcast: p-1 tree edges.
  const auto machine = machine::paragon(4, 4);  // p = 16
  for (const int s : {1, 5, 16}) {
    const Problem pb = make_problem(machine, dist::Kind::kEqual, s, 256);
    const bool root_is_source = pb.sources.front() == 0;
    const std::uint64_t gather = static_cast<std::uint64_t>(s) -
                                 (root_is_source ? 1 : 0);
    EXPECT_EQ(sends_of(make_two_step(false), pb), gather + 15u)
        << "s=" << s;
  }
}

TEST(MessageCounts, PersAlltoAllIsSTimesPMinusOne) {
  const auto machine = machine::paragon(4, 4);
  for (const int s : {1, 7, 16}) {
    const Problem pb = make_problem(machine, dist::Kind::kEqual, s, 256);
    EXPECT_EQ(sends_of(make_pers_alltoall(false), pb),
              static_cast<std::uint64_t>(s) * 15u)
        << "s=" << s;
  }
}

TEST(MessageCounts, BrLinSingleSourceIsATree) {
  // One source: the halving pattern degenerates to a broadcast tree with
  // exactly p-1 one-sided sends.
  for (const int p : {2, 8, 15, 16}) {
    const auto machine = machine::paragon(1, p);
    const Problem pb = make_problem(machine, std::vector<Rank>{0}, 256);
    EXPECT_EQ(sends_of(make_br_lin(), pb),
              static_cast<std::uint64_t>(p) - 1u)
        << "p=" << p;
  }
}

TEST(MessageCounts, BrLinAllActivePowerOfTwoIsPLogP) {
  // Everyone a source on 2^k ranks: every iteration is a full pairwise
  // exchange — p messages per iteration, log2(p) iterations.
  for (const int p : {4, 16, 64}) {
    const auto machine = machine::paragon(1, p);
    const Problem pb = make_problem(machine, dist::Kind::kEqual, p, 64);
    EXPECT_EQ(sends_of(make_br_lin(), pb),
              static_cast<std::uint64_t>(p) *
                  static_cast<std::uint64_t>(ilog2_floor(p)))
        << "p=" << p;
  }
}

TEST(MessageCounts, AllgathervRdMatchesBrLinExactly) {
  const auto machine = machine::paragon(5, 5);
  const Problem pb = make_problem(machine, dist::Kind::kRandom, 9, 512, 3);
  EXPECT_EQ(sends_of(make_allgatherv_rd(), pb),
            sends_of(make_br_lin(), pb));
}

TEST(MessageCounts, RepositioningAddsExactlyTheMovers) {
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kSquare, 16, 512);
  const auto base = make_br_xy_source();
  const auto repos = make_repositioning(base);
  // The repositioned broadcast runs on the ideal distribution.
  const Problem ideal_pb =
      make_problem(machine, dist::ideal_rows({8, 8}, 16), 512);
  const std::uint64_t base_on_ideal = sends_of(base, ideal_pb);
  const std::uint64_t repos_total = sends_of(repos, pb);
  const std::uint64_t movers = repos_total - base_on_ideal;
  EXPECT_GT(movers, 0u);
  EXPECT_LE(movers, 16u);
}

TEST(MessageCounts, PartitioningAddsPermutationPlusExchange)  {
  // p1 == p2 == 32 on 8x8: the final exchange is one mutual swap per pair
  // (2 * 32 messages) on top of the two half-machine broadcasts and the
  // initial permutation (at most s messages).
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 16, 512);
  const auto part = make_partitioning(make_br_lin());
  const std::uint64_t total = sends_of(part, pb);
  EXPECT_GE(total, 64u);  // at least the final exchange
  EXPECT_LE(total, 64u + 16u + 2u * 32u * 5u);  // exchange + permutation +
                                                // two halving broadcasts
}

TEST(MessageCounts, WireBytesScaleWithChunkTraffic) {
  // Doubling L must exactly double the payload part of the traffic for a
  // non-combining algorithm (envelope bytes are L-independent).
  const auto machine = machine::paragon(4, 4);
  const Problem small = make_problem(machine, dist::Kind::kEqual, 4, 1024);
  const Problem large = make_problem(machine, dist::Kind::kEqual, 4, 2048);
  const auto alg = make_pers_alltoall(false);
  const auto bytes_small = run(*alg, small).outcome.network.total_bytes;
  const auto bytes_large = run(*alg, large).outcome.network.total_bytes;
  const std::uint64_t messages = 4u * 15u;
  EXPECT_EQ(bytes_large - bytes_small, messages * 1024u);
}

}  // namespace
}  // namespace spb::stop
