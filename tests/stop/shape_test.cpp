// Qualitative claims of the paper's evaluation, encoded as unit tests on
// small machines (the bench/ binaries reproduce the full figures).  These
// guard the calibration: a parameter change that flips a headline ordering
// fails here, close to the code.
#include <gtest/gtest.h>

#include "mp/metrics.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(Shape, ParagonBrFamilyBeatsLibraryBaselines) {
  // Figure 3's ordering: Br_Lin / Br_xy_* clearly ahead of 2-Step and
  // PersAlltoAll on a mid-size Paragon.
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 24, 4096);
  const double br_lin = run_ms(*make_br_lin(), pb);
  const double br_xy = run_ms(*make_br_xy_source(), pb);
  const double two_step = run_ms(*make_two_step(false), pb);
  const double pers = run_ms(*make_pers_alltoall(false), pb);
  EXPECT_LT(br_lin, two_step);
  EXPECT_LT(br_lin, pers);
  EXPECT_LT(br_xy, two_step);
  EXPECT_LT(br_xy, pers);
}

TEST(Shape, ParagonPersAlltoAllFlatForTinyMessages) {
  // Figure 4: PersAlltoAll's curve is almost flat up to ~1K because its
  // cost is dominated by per-message overheads, not bytes.
  const auto machine = machine::paragon(8, 8);
  const Problem tiny =
      make_problem(machine, dist::Kind::kDiagRight, 16, 32);
  const Problem small =
      make_problem(machine, dist::Kind::kDiagRight, 16, 1024);
  const auto pers = make_pers_alltoall(false);
  const double t_tiny = run_ms(*pers, tiny);
  const double t_small = run_ms(*pers, small);
  EXPECT_LT(t_small, t_tiny * 1.6)
      << "32B -> 1K should barely move PersAlltoAll";
}

TEST(Shape, ParagonPersAlltoAllCompetitiveOnTinyMachines) {
  // Figure 5: "PersAlltoAll is as good as any other algorithm for small
  // machine sizes (4 to 16 processors)".
  const auto machine = machine::paragon(2, 2);
  const Problem pb = make_problem(machine, dist::Kind::kDiagRight, 2, 1024);
  const double pers = run_ms(*make_pers_alltoall(false), pb);
  const double br = run_ms(*make_br_lin(), pb);
  EXPECT_LT(pers, br * 1.5);
}

TEST(Shape, ParagonSpreadingFixedVolumeHelps) {
  // Figure 7: with the total message volume fixed, more sources = faster.
  const auto machine = machine::paragon(8, 8);
  const auto br = make_br_xy_source();
  const Bytes total = 80 * 1024;
  const Problem few =
      make_problem(machine, dist::Kind::kDiagRight, 5, total / 5);
  const Problem many =
      make_problem(machine, dist::Kind::kDiagRight, 40, total / 40);
  EXPECT_LT(run_ms(*br, many), run_ms(*br, few));
}

TEST(Shape, ParagonDistributionCostsGrowOnHardPatterns) {
  // "For the Paragon, the performance obtained on ideal distributions can
  // differ by a factor of 2 from that obtained on poor distributions."
  // The gap widens with the message length; at 16K the cross distribution
  // costs Br_xy_source ~1.6x the row distribution in our model.
  const auto machine = machine::paragon(10, 10);
  const auto alg = make_br_xy_source();
  const Problem good = make_problem(machine, dist::Kind::kRow, 30, 16384);
  const Problem bad = make_problem(machine, dist::Kind::kCross, 30, 16384);
  const double ratio = run_ms(*alg, bad) / run_ms(*alg, good);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 4.0);
}

TEST(Shape, BrXyDimSuffersOnRowDistribution) {
  // Figure 6's spike: on a square mesh Br_xy_dim processes rows first,
  // which is exactly wrong for R(s); Br_xy_source picks columns first.
  const auto machine = machine::paragon(10, 10);
  const Problem pb = make_problem(machine, dist::Kind::kRow, 30, 2048);
  const double dim = run_ms(*make_br_xy_dim(), pb);
  const double source = run_ms(*make_br_xy_source(), pb);
  EXPECT_GT(dim, source * 1.3);
}

TEST(Shape, T3DAlltoallWinsAtScale) {
  // Figure 13(a) at large s: MPI_Alltoall best, Br_Lin worst.
  const auto machine = machine::t3d(64);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 48, 4096);
  const double alltoall = run_ms(*make_pers_alltoall(true), pb);
  const double allgather = run_ms(*make_two_step(true), pb);
  const double br_lin = run_ms(*make_br_lin(), pb);
  EXPECT_LT(alltoall, allgather);
  EXPECT_LT(alltoall, br_lin);
  EXPECT_GT(br_lin, allgather) << "Br_Lin pays wait + combining on T3D";
}

TEST(Shape, TwoStepCongestionShowsInMetrics) {
  // Figure 2's "congestion O(s)" column: the gather concentrates ~s
  // receives at P0 in one iteration; Br_Lin stays O(1) per iteration.
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 32, 512);
  const RunResult two_step = run(*make_two_step(false), pb);
  const RunResult br_lin = run(*make_br_lin(), pb);
  EXPECT_GE(two_step.outcome.metrics.congestion, 30u);
  EXPECT_LE(br_lin.outcome.metrics.congestion, 6u);
}

TEST(Shape, PersAlltoallSendCountIsOrderP) {
  // Figure 2's "#send/rec O(p)" for PersAlltoAll vs O(log p) for Br_Lin.
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 16, 512);
  const RunResult pers = run(*make_pers_alltoall(false), pb);
  const RunResult br = run(*make_br_lin(), pb);
  EXPECT_GE(pers.outcome.metrics.max_send_recv, 63u);
  EXPECT_LE(br.outcome.metrics.max_send_recv, 2u * 6u + 4u);
}

TEST(Shape, ContentionMatters) {
  // The ablation claim: link/NI contention is a first-order effect for the
  // message-flooding PersAlltoAll at large L (1.5x in our model), and the
  // model is monotone — turning contention off never slows anything down.
  auto machine = machine::paragon(8, 8);
  const Problem with = make_problem(machine, dist::Kind::kEqual, 32, 16384);
  machine.net.model_contention = false;
  const Problem without =
      make_problem(machine, dist::Kind::kEqual, 32, 16384);
  const auto pers = make_pers_alltoall(false);
  EXPECT_GT(run_ms(*pers, with), run_ms(*pers, without) * 1.3);
  for (const auto& alg : all_algorithms())
    EXPECT_GE(run_ms(*alg, with) * 1.0000001, run_ms(*alg, without))
        << alg->name();
}

}  // namespace
}  // namespace spb::stop
