#include "stop/verify.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

Problem small() {
  return make_problem(machine::paragon(2, 2), std::vector<Rank>{0, 2}, 100);
}

TEST(Verify, ExpectedPayloadHasAllSources) {
  const mp::Payload want = expected_payload(small());
  EXPECT_EQ(want, mp::Payload::of({{0, 100}, {2, 100}}));
}

TEST(Verify, AcceptsCorrectResult) {
  const Problem pb = small();
  const std::vector<mp::Payload> good(4, expected_payload(pb));
  EXPECT_TRUE(verify_broadcast(pb, good).ok);
}

TEST(Verify, RejectsMissingChunk) {
  const Problem pb = small();
  std::vector<mp::Payload> bad(4, expected_payload(pb));
  bad[3] = mp::Payload::original(0, 100);  // lost source 2
  const VerifyResult v = verify_broadcast(pb, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("rank 3"), std::string::npos) << v.error;
}

TEST(Verify, RejectsWrongSize) {
  const Problem pb = small();
  std::vector<mp::Payload> bad(4, expected_payload(pb));
  bad[1] = mp::Payload::of({{0, 100}, {2, 99}});
  EXPECT_FALSE(verify_broadcast(pb, bad).ok);
}

TEST(Verify, RejectsExtraChunk) {
  const Problem pb = small();
  std::vector<mp::Payload> bad(4, expected_payload(pb));
  bad[0] = mp::Payload::of({{0, 100}, {1, 100}, {2, 100}});
  EXPECT_FALSE(verify_broadcast(pb, bad).ok);
}

TEST(Verify, ReportsMultipleBadRanksConcisely) {
  const Problem pb = small();
  std::vector<mp::Payload> bad(4);  // everyone empty
  const VerifyResult v = verify_broadcast(pb, bad);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("4 of 4"), std::string::npos) << v.error;
}

TEST(Verify, WrongVectorSizeRejected) {
  const Problem pb = small();
  EXPECT_THROW(verify_broadcast(pb, std::vector<mp::Payload>(3)),
               CheckError);
}

}  // namespace
}  // namespace spb::stop
