// Edge cases of the repositioning and partitioning wrappers: the smallest
// machine partitioning accepts (p = 4), the extreme source counts (s = 1
// and s = p, where repositioning has nothing or everything to move), and
// degenerate 1 x p / p x 1 meshes where one grid dimension vanishes and
// the "longer dimension" split has no choice.
#include <gtest/gtest.h>

#include <vector>

#include "stop/algorithm.h"
#include "stop/partition.h"
#include "stop/reposition.h"
#include "stop/run.h"
#include "stop/verify.h"

namespace spb::stop {
namespace {

std::vector<AlgorithmPtr> wrapper_algorithms() {
  std::vector<AlgorithmPtr> algs;
  for (const auto& base :
       {make_br_lin(), make_br_xy_source(), make_br_xy_dim()}) {
    algs.push_back(make_repositioning(base));
    algs.push_back(make_partitioning(base));
  }
  return algs;
}

void expect_all_wrappers_verify(const machine::MachineConfig& machine,
                                int s) {
  const Problem pb = make_problem(machine, dist::Kind::kEqual, s, 256);
  for (const AlgorithmPtr& alg : wrapper_algorithms()) {
    const RunResult r = run(*alg, pb);  // run() verifies internally
    EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok)
        << alg->name() << " on " << machine.name << " s=" << s;
  }
}

TEST(DegenerateShapes, FourProcessorsOneSource) {
  // s = 1: repositioning degenerates to at most one move, partitioning
  // must still give the empty group a copy via the final exchange.
  expect_all_wrappers_verify(machine::paragon(2, 2), 1);
}

TEST(DegenerateShapes, FourProcessorsAllSources) {
  // s = p: every rank is a source; the ideal distribution is the full
  // machine, so repositioning must be a no-op permutation (nothing may
  // move to an occupied slot) and still verify.
  expect_all_wrappers_verify(machine::paragon(2, 2), 4);
}

TEST(DegenerateShapes, OneByPMeshes) {
  for (const int p : {4, 8}) {
    for (const int s : {1, p / 2, p}) {
      expect_all_wrappers_verify(machine::paragon(1, p), s);
      expect_all_wrappers_verify(machine::paragon(p, 1), s);
    }
  }
}

TEST(DegenerateShapes, RepositioningAtFullOccupancyMovesNothing) {
  // With s = p there is no free slot: the matcher must map every source to
  // itself, so the repositioning phase adds zero sends.
  const Problem pb =
      make_problem(machine::paragon(2, 2), dist::Kind::kEqual, 4, 256);
  const auto repos = make_repositioning(make_br_lin());
  const auto base = make_br_lin();
  const RunResult wrapped = run(*repos, pb);
  const RunResult plain = run(*base, pb);
  EXPECT_EQ(wrapped.outcome.metrics.total_sends,
            plain.outcome.metrics.total_sends);
}

TEST(DegenerateShapes, PartitionSplitOnDegenerateMeshes) {
  // 1 x p splits into two 1 x (p/2) halves; both groups stay non-empty
  // and cover the machine.
  for (const int p : {4, 9}) {
    const Problem pb =
        make_problem(machine::paragon(1, p), std::vector<Rank>{0}, 64);
    const auto split = PartitionSplit::compute(Frame::whole(pb));
    EXPECT_EQ(split.rows1, 1);
    EXPECT_EQ(split.rows2, 1);
    EXPECT_EQ(split.cols1 + split.cols2, p);
    EXPECT_GE(split.g1.size(), 1u);
    EXPECT_LE(split.g1.size(), split.g2.size());
    EXPECT_EQ(split.g1.size() + split.g2.size(),
              static_cast<std::size_t>(p));
  }
}

TEST(DegenerateShapes, PermutationPlanExtremes) {
  // s = 1: one mover or none.  Full occupancy: identity (no movers).
  const PermutationPlan one =
      PermutationPlan::match({5}, {2});
  EXPECT_EQ(one.movers, (std::vector<Rank>{5}));
  EXPECT_EQ(one.slots, (std::vector<Rank>{2}));
  EXPECT_EQ(one.send_target(5), 2);
  EXPECT_EQ(one.recv_origin(2), 5);
  EXPECT_EQ(one.send_target(0), kNoRank);

  const PermutationPlan onto =
      PermutationPlan::match({0, 1, 2, 3}, {0, 1, 2, 3});
  EXPECT_TRUE(onto.movers.empty());
  EXPECT_TRUE(onto.slots.empty());
}

}  // namespace
}  // namespace spb::stop
