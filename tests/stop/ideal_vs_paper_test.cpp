// The paper hand-picks ideal distributions (the left diagonal for Br_Lin,
// positioned rows for Br_xy_source); our repositioning searches for them
// against the halving merge pattern.  These tests pit the searched
// placements against the paper's named ones — and record an honest
// finding: the search optimizes the *merge pattern* (activity growth),
// while a named distribution like the left diagonal also encodes mesh
// locality, which can buy another 10-15% on the physical network.  The
// searched placement must stay within that band, and must clearly beat
// placements that are wrong for the merge pattern.
#include <gtest/gtest.h>

#include "coll/halving.h"
#include "dist/distribution.h"
#include "dist/ideal.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(IdealVsPaper, SearchedLinearIsCloseToLeftDiagonalForBrLin) {
  // "The left diagonal distribution ... is one of the ideal distributions
  // for Br_Lin."  Both placements double activity maximally; Dl also
  // spreads traffic across mesh links, so it may run up to ~15% faster.
  const auto machine = machine::paragon(10, 10);
  const auto br = make_br_lin();
  for (const int s : {10, 20, 30}) {
    const Problem searched =
        make_problem(machine, dist::ideal_linear({10, 10}, s), 4096);
    const Problem diagonal =
        make_problem(machine, dist::Kind::kDiagLeft, s, 4096);
    const double searched_ms = run_ms(*br, searched);
    const double diagonal_ms = run_ms(*br, diagonal);
    EXPECT_LE(searched_ms, diagonal_ms * 1.25) << "s=" << s;
    // On the metric the search optimizes — activity growth under the
    // merge pattern — the searched placement dominates the square block.
    // (On the wire the clustered block can still be competitive for
    // Br_Lin at large L: short transfer distances offset slow spreading.
    // Br_xy_source, the algorithm the paper repositions on the Paragon,
    // is covered by the tests below and Figures 9/10.)
    std::vector<char> searched_flags(100, 0);
    std::vector<char> block_flags(100, 0);
    for (const Rank r : searched.sources)
      searched_flags[static_cast<std::size_t>(r)] = 1;
    for (const Rank r :
         dist::generate(dist::Kind::kSquare, {10, 10}, s))
      block_flags[static_cast<std::size_t>(r)] = 1;
    EXPECT_GE(coll::HalvingSchedule::activity_profile(searched_flags),
              coll::HalvingSchedule::activity_profile(block_flags))
        << "s=" << s;
  }
}

TEST(IdealVsPaper, SearchedRowsBeatNaiveEvenRowsForBrXySource) {
  // The paper's R(20)-on-10x10 example: evenly spaced rows {0, 5} pair in
  // the first column iteration; the searched rows avoid that and must win.
  const auto machine = machine::paragon(10, 10);
  const auto alg = make_br_xy_source();
  const Problem searched =
      make_problem(machine, dist::ideal_rows({10, 10}, 20), 4096);
  const Problem naive = make_problem(machine, dist::Kind::kRow, 20, 4096);
  EXPECT_LT(run_ms(*alg, searched), run_ms(*alg, naive));
}

TEST(IdealVsPaper, SearchedIdealWithinABreathOfEveryNamedDistribution) {
  // The repositioning target must be at worst a few percent behind the
  // best named family at the same (machine, s, L) — physically tuned
  // patterns (bands, diagonals) may shave the last sliver.
  const auto machine = machine::paragon(8, 8);
  const auto alg = make_br_xy_source();
  const Problem searched =
      make_problem(machine, dist::ideal_rows({8, 8}, 16), 2048);
  const double best = run_ms(*alg, searched);
  for (const dist::Kind kind : dist::all_kinds()) {
    const Problem pb = make_problem(machine, kind, 16, 2048);
    EXPECT_LE(best, run_ms(*alg, pb) * 1.08) << dist::kind_name(kind);
  }
  // ...and clearly ahead of the hard patterns.
  const Problem cross =
      make_problem(machine, dist::Kind::kCross, 16, 2048);
  EXPECT_LT(best, run_ms(*alg, cross) * 0.95);
}

}  // namespace
}  // namespace spb::stop
