// RunOptions behaviour: tracing through the harness, verification toggles.
#include <gtest/gtest.h>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(RunOptions, TraceIsOffByDefaultAndOnOnRequest) {
  const auto machine = machine::paragon(2, 3);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 2, 256);
  const auto alg = make_br_lin();

  const RunResult plain = run(*alg, pb);
  EXPECT_TRUE(plain.trace.empty());

  const RunResult traced = run(*alg, pb, {.verify = true, .trace = true});
  EXPECT_FALSE(traced.trace.empty());
  // Tracing must not perturb the simulation.
  EXPECT_DOUBLE_EQ(traced.time_us, plain.time_us);
  // Every metric-counted send appears in the trace.
  std::size_t sends = 0;
  for (const auto& e : traced.trace.events())
    if (e.kind == mp::TraceEvent::Kind::kSend) ++sends;
  EXPECT_EQ(sends, traced.outcome.metrics.total_sends);
}

TEST(RunOptions, TraceHorizonMatchesMakespan) {
  const auto machine = machine::paragon(3, 3);
  const Problem pb = make_problem(machine, dist::Kind::kRandom, 4, 512, 8);
  const RunResult r =
      run(*make_br_xy_source(), pb, {.verify = true, .trace = true});
  // The last handed-over receive is what completes the slowest rank.
  EXPECT_NEAR(r.trace.horizon_us(), r.time_us, 1e-9);
}

}  // namespace
}  // namespace spb::stop
