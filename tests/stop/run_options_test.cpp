// RunOptions behaviour: tracing through the harness, verification toggles,
// and the fluent RunConfig builder lowering onto the same aggregate.
#include <gtest/gtest.h>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(RunConfig, DefaultLowersToDefaultRunOptions) {
  constexpr RunOptions lowered = RunConfig{};
  static_assert(lowered.verify && !lowered.trace && !lowered.record_schedule &&
                !lowered.link_stats);
  static_assert(lowered.sim_threads == 0,
                "serial loop must stay the default");
  EXPECT_FALSE(lowered.faults.any());
  EXPECT_EQ(lowered.fault_seed, RunOptions{}.fault_seed);
}

TEST(RunConfig, SimThreadsLowersIntoRunOptions) {
  constexpr RunOptions o = RunConfig{}.sim_threads(8);
  static_assert(o.sim_threads == 8);
  EXPECT_TRUE(o.verify);  // orthogonal knobs untouched
}

TEST(RunConfig, FluentChainsSetEveryKnob) {
  fault::FaultSpec spec;
  spec.drop_rate = 0.25;
  const RunOptions o = RunConfig{}
                           .no_verify()
                           .trace()
                           .record_schedule()
                           .link_stats()
                           .faults(spec, 9);
  EXPECT_FALSE(o.verify);
  EXPECT_TRUE(o.trace);
  EXPECT_TRUE(o.record_schedule);
  EXPECT_TRUE(o.link_stats);
  EXPECT_TRUE(o.faults.any());
  EXPECT_EQ(o.fault_seed, 9u);
  // Toggles take an explicit off too.
  EXPECT_FALSE(RunConfig{}.trace().trace(false).options().trace);
}

TEST(RunConfig, FeedsRunLikeTheAggregate) {
  const auto machine = machine::paragon(2, 3);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 2, 256);
  const auto alg = make_br_lin();
  const RunResult via_config = run(*alg, pb, RunConfig{}.trace());
  const RunResult via_aggregate = run(*alg, pb, {.verify = true, .trace = true});
  EXPECT_DOUBLE_EQ(via_config.time_us, via_aggregate.time_us);
  EXPECT_EQ(via_config.trace.size(), via_aggregate.trace.size());
}

TEST(RunOptions, TraceIsOffByDefaultAndOnOnRequest) {
  const auto machine = machine::paragon(2, 3);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 2, 256);
  const auto alg = make_br_lin();

  const RunResult plain = run(*alg, pb);
  EXPECT_TRUE(plain.trace.empty());

  const RunResult traced = run(*alg, pb, {.verify = true, .trace = true});
  EXPECT_FALSE(traced.trace.empty());
  // Tracing must not perturb the simulation.
  EXPECT_DOUBLE_EQ(traced.time_us, plain.time_us);
  // Every metric-counted send appears in the trace.
  std::size_t sends = 0;
  for (const auto& e : traced.trace.events())
    if (e.kind == mp::TraceEvent::Kind::kSend) ++sends;
  EXPECT_EQ(sends, traced.outcome.metrics.total_sends);
}

TEST(RunOptions, TraceHorizonMatchesMakespan) {
  const auto machine = machine::paragon(3, 3);
  const Problem pb = make_problem(machine, dist::Kind::kRandom, 4, 512, 8);
  const RunResult r = run(*make_br_xy_source(), pb, RunConfig{}.trace());
  // The last handed-over receive is what completes the slowest rank.
  EXPECT_NEAR(r.trace.horizon_us(), r.time_us, 1e-9);
}

}  // namespace
}  // namespace spb::stop
