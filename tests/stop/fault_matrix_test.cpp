// The acceptance matrix of the fault-injection subsystem: every algorithm
// in the registry, on the two Paragon meshes, the scattered T3D, a 4-D
// torus and a two-level cluster, under the full adverse load (10% drops, a
// quarter of the links at 4x slower, one straggler) must complete and pass
// verification — the retransmit / reorder / detour machinery makes faults
// invisible to the algorithms.
#include <gtest/gtest.h>

#include "fault/fault.h"
#include "machine/registry.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

RunOptions adverse_options() {
  RunOptions opt;
  opt.faults =
      fault::FaultSpec::parse("drop=0.1,dup=0.05,links=0.25x4,lat=2,"
                              "straggle=1x3");
  opt.fault_seed = 42;
  return opt;
}

class FaultMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultMatrix, EveryAlgorithmSurvivesTheAdverseLoad) {
  // Machines come through the registry grammar, so the matrix doubles as
  // an end-to-end check that every registered family plans and runs.
  const machine::MachineConfig machine = machine::from_name(GetParam());
  // Small s and L keep the matrix fast; the fault machinery runs per
  // message, so the coverage comes from the send count, not the bytes.
  const Problem pb = make_problem(machine, dist::Kind::kDiagRight,
                                  machine.p >= 64 ? 16 : 8, 512);
  const RunOptions opt = adverse_options();
  for (const AlgorithmPtr& alg : all_algorithms()) {
    const RunResult r = run(*alg, pb, opt);  // run() verifies internally
    EXPECT_GT(r.time_us, 0) << alg->name();
    // The load is adverse enough that drops actually happened.
    EXPECT_GT(r.outcome.metrics.retransmits, 0u) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, FaultMatrix,
                         ::testing::Values("paragon4x4", "paragon8x8",
                                           "t3d512", "torus4x4x4x4",
                                           "cluster8x4"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(FaultMatrix, RunsReplayByteIdenticalAcrossRepeats) {
  // Determinism at matrix scale: the same seed + spec reproduces the same
  // makespan, event count and fault counters for every algorithm.
  const machine::MachineConfig machine = machine::paragon(4, 4);
  const Problem pb = make_problem(machine, dist::Kind::kRandom, 6, 1024, 7);
  const RunOptions opt = adverse_options();
  for (const AlgorithmPtr& alg : all_algorithms()) {
    const RunResult a = run(*alg, pb, opt);
    const RunResult b = run(*alg, pb, opt);
    EXPECT_EQ(a.time_us, b.time_us) << alg->name();
    EXPECT_EQ(a.outcome.events, b.outcome.events) << alg->name();
    EXPECT_EQ(a.outcome.metrics.retransmits, b.outcome.metrics.retransmits)
        << alg->name();
    EXPECT_EQ(a.outcome.metrics.duplicates, b.outcome.metrics.duplicates)
        << alg->name();
    EXPECT_EQ(a.outcome.metrics.transit_drops,
              b.outcome.metrics.transit_drops)
        << alg->name();
    EXPECT_EQ(a.outcome.network.degraded_transfers,
              b.outcome.network.degraded_transfers)
        << alg->name();
  }
}

TEST(FaultMatrix, DifferentSeedsGiveDifferentRuns) {
  // The seed must matter: two seeds on the same spec should disagree on
  // at least the fault counters for a busy algorithm.
  const machine::MachineConfig machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 16, 1024);
  RunOptions opt = adverse_options();
  const RunResult a = run(*make_pers_alltoall(false), pb, opt);
  opt.fault_seed = 43;
  const RunResult b = run(*make_pers_alltoall(false), pb, opt);
  EXPECT_NE(a.outcome.metrics.transit_drops, b.outcome.metrics.transit_drops);
}

TEST(FaultMatrix, FaultCountersStayZeroWhenOff) {
  const machine::MachineConfig machine = machine::paragon(4, 4);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 8, 1024);
  const RunResult r = run(*make_br_lin(), pb);  // default options: no faults
  EXPECT_EQ(r.outcome.metrics.retransmits, 0u);
  EXPECT_EQ(r.outcome.metrics.transit_drops, 0u);
  EXPECT_EQ(r.outcome.metrics.duplicates, 0u);
  EXPECT_EQ(r.outcome.network.degraded_transfers, 0u);
  EXPECT_EQ(r.outcome.network.detours, 0u);
  EXPECT_EQ(r.outcome.network.route_invalidations, 0u);
}

}  // namespace
}  // namespace spb::stop
