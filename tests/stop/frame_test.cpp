#include "stop/frame.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace spb::stop {
namespace {

Problem small_problem() {
  return make_problem(machine::paragon(3, 4), std::vector<Rank>{1, 5, 10},
                      256);
}

TEST(Frame, WholeCoversTheMachine) {
  const Frame f = Frame::whole(small_problem());
  EXPECT_EQ(f.size(), 12);
  EXPECT_EQ(f.rows(), 3);
  EXPECT_EQ(f.cols(), 4);
  for (Rank r = 0; r < 12; ++r) {
    EXPECT_TRUE(f.contains(r));
    EXPECT_EQ(f.position_of(r), r);
    EXPECT_EQ(f.rank_at(r), r);
  }
  EXPECT_EQ(f.sources(), (std::vector<Rank>{1, 5, 10}));
  EXPECT_EQ(f.message_bytes(), 256u);
}

TEST(Frame, ActiveFlagsMatchSources) {
  const Frame f = Frame::whole(small_problem());
  const auto flags = f.active_flags();
  for (Rank r = 0; r < 12; ++r)
    EXPECT_EQ(flags[static_cast<std::size_t>(r)] != 0,
              r == 1 || r == 5 || r == 10);
}

TEST(Frame, SubFrameRemapsPositions) {
  // Right half of a 2x4 mesh: ranks {2,3,6,7} as a 2x2 grid.
  const Frame f =
      Frame::sub({2, 3, 6, 7}, 2, 2, {3, 6}, 128);
  EXPECT_EQ(f.size(), 4);
  EXPECT_EQ(f.position_of(2), 0);
  EXPECT_EQ(f.position_of(7), 3);
  EXPECT_FALSE(f.contains(0));
  EXPECT_THROW(f.position_of(0), CheckError);
  const auto flags = f.active_flags();
  EXPECT_EQ(flags, (std::vector<char>{0, 1, 1, 0}));
}

TEST(Frame, SourceCountsUseFrameGeometry) {
  const Frame f = Frame::sub({2, 3, 6, 7}, 2, 2, {3, 6}, 128);
  // 3 is at (0,1), 6 at (1,0).
  EXPECT_EQ(f.row_source_counts(), (std::vector<int>{1, 1}));
  EXPECT_EQ(f.col_source_counts(), (std::vector<int>{1, 1}));
}

TEST(Frame, HintsPropagateFromMachine) {
  auto m = machine::t3d(16);
  const Problem pb = make_problem(m, std::vector<Rank>{0}, 64);
  const Frame f = Frame::whole(pb);
  EXPECT_EQ(f.hints().bcast_segment_bytes, m.bcast_segment_bytes);
}

TEST(Frame, Validation) {
  EXPECT_THROW(Frame::sub({}, 1, 1, {}, 64), CheckError);
  EXPECT_THROW(Frame::sub({0, 1, 2}, 2, 2, {}, 64), CheckError);  // 3 != 4
  EXPECT_THROW(Frame::sub({0, 0}, 1, 2, {}, 64), CheckError);  // duplicate
  EXPECT_THROW(Frame::sub({0, 1}, 1, 2, {7}, 64), CheckError);  // alien src
  EXPECT_THROW(Frame::sub({0, 1}, 1, 2, {1, 0}, 64), CheckError);  // unsorted
}

TEST(Problem, Validation) {
  auto m = machine::paragon(2, 2);
  EXPECT_THROW(make_problem(m, std::vector<Rank>{}, 64), CheckError);
  EXPECT_THROW(make_problem(m, std::vector<Rank>{0, 0}, 64), CheckError);
  EXPECT_THROW(make_problem(m, std::vector<Rank>{4}, 64), CheckError);
  EXPECT_THROW(make_problem(m, std::vector<Rank>{0}, 0), CheckError);
  // Unsorted input is fine — make_problem sorts.
  const Problem pb = make_problem(m, std::vector<Rank>{3, 0}, 64);
  EXPECT_EQ(pb.sources, (std::vector<Rank>{0, 3}));
}

}  // namespace
}  // namespace spb::stop
