#include "stop/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(PartitionSplit, SplitsTheLongerDimension) {
  const Problem wide =
      make_problem(machine::paragon(4, 10), std::vector<Rank>{0}, 64);
  const auto sw = PartitionSplit::compute(Frame::whole(wide));
  EXPECT_EQ(sw.cols1, 5);
  EXPECT_EQ(sw.cols2, 5);
  EXPECT_EQ(sw.rows1, 4);
  EXPECT_EQ(sw.g1.size(), 20u);
  // G1 = left columns: rank 0 in G1, rank 5 (row 0, col 5) in G2.
  EXPECT_EQ(sw.g1[0], 0);
  EXPECT_EQ(sw.g2[0], 5);

  const Problem tall =
      make_problem(machine::paragon(10, 3), std::vector<Rank>{0}, 64);
  const auto st = PartitionSplit::compute(Frame::whole(tall));
  EXPECT_EQ(st.rows1, 5);
  EXPECT_EQ(st.rows2, 5);
  EXPECT_EQ(st.cols1, 3);
}

TEST(PartitionSplit, OddDimensionsGiveSmallerG1) {
  const Problem pb =
      make_problem(machine::paragon(4, 7), std::vector<Rank>{0}, 64);
  const auto s = PartitionSplit::compute(Frame::whole(pb));
  EXPECT_EQ(s.cols1, 3);
  EXPECT_EQ(s.cols2, 4);
  EXPECT_LE(s.g1.size(), s.g2.size());
  // Groups partition the rank set.
  std::set<Rank> all(s.g1.begin(), s.g1.end());
  all.insert(s.g2.begin(), s.g2.end());
  EXPECT_EQ(all.size(), 28u);
}

TEST(PartitionShare, ProportionalAndClamped) {
  // p1 == p2: half each (rounhalf up).
  EXPECT_EQ(partition_share(10, 32, 32), 5);
  EXPECT_EQ(partition_share(11, 32, 32), 6);
  // Proportional to group size.
  EXPECT_EQ(partition_share(12, 16, 32), 4);
  // Rounded proportional share: 60 * 16 / 80.
  EXPECT_EQ(partition_share(60, 16, 64), 12);
  EXPECT_EQ(partition_share(60, 64, 16), 48);
  // Invariant sweep: the share is feasible and near-proportional for every
  // feasible (s, p1, p2).
  for (const int p1 : {1, 3, 8, 16}) {
    for (const int p2 : {1, 4, 8, 32}) {
      for (int s = 0; s <= p1 + p2; ++s) {
        const int s1 = partition_share(s, p1, p2);
        ASSERT_GE(s1, 0);
        ASSERT_LE(s1, std::min(s, p1));
        ASSERT_LE(s - s1, p2);
        const double exact =
            static_cast<double>(s) * p1 / (p1 + p2);
        ASSERT_LE(std::abs(s1 - exact), 1.0 + 1e-9)
            << "s=" << s << " p1=" << p1 << " p2=" << p2;
      }
    }
  }
  // Degenerate: one source.
  for (const int s1 : {partition_share(1, 8, 8)}) EXPECT_TRUE(s1 == 0 || s1 == 1);
}

TEST(Partitioning, NamesFollowThePaper) {
  EXPECT_EQ(make_partitioning(make_br_lin())->name(), "Part_Lin");
  EXPECT_EQ(make_partitioning(make_br_xy_source())->name(),
            "Part_xy_source");
  EXPECT_EQ(make_partitioning(make_br_xy_dim())->name(), "Part_xy_dim");
}

TEST(Partitioning, CorrectAcrossDistributionsAndShapes) {
  for (const auto& machine :
       {machine::paragon(6, 8), machine::paragon(5, 7),
        machine::paragon(1, 9), machine::paragon(9, 1)}) {
    for (const auto& base :
         {make_br_lin(), make_br_xy_source(), make_br_xy_dim()}) {
      const auto part = make_partitioning(base);
      for (const dist::Kind kind :
           {dist::Kind::kEqual, dist::Kind::kSquare, dist::Kind::kRandom}) {
        for (const int s : {1, 2, machine.p / 2, machine.p}) {
          if (s < 1) continue;
          const Problem pb = make_problem(machine, kind, s, 512);
          EXPECT_NO_THROW(run(*part, pb))
              << part->name() << " " << machine.name << " s=" << s << " "
              << dist::kind_name(kind);
        }
      }
    }
  }
}

TEST(Partitioning, SkewedSourcesEndUpBalanced) {
  // All sources start in the left half; the repositioning must still give
  // each group its proportional share, and the run must verify.
  const auto machine = machine::paragon(4, 8);
  std::vector<Rank> left_only;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 3; ++c) left_only.push_back(r * 8 + c);
  const Problem pb = make_problem(machine, left_only, 256);
  const auto part = make_partitioning(make_br_lin());
  EXPECT_NO_THROW(run(*part, pb));
}

TEST(Partitioning, FinalExchangeDominatesForLargeMessages) {
  // Part_* pays a full cross-seam permutation of s*L data at the end; the
  // paper found this eats the gains.  Check the mechanism: partitioning
  // must not beat plain repositioning on a big-message problem.
  const auto machine = machine::paragon(16, 16);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 64, 8192);
  const double part_ms = run_ms(*make_partitioning(make_br_xy_source()), pb);
  const double repos_ms =
      run_ms(*make_repositioning(make_br_xy_source()), pb);
  EXPECT_GT(part_ms, repos_ms * 0.95);
}

TEST(Partitioning, SingleProcessorRejected) {
  const Problem pb =
      make_problem(machine::paragon(1, 1), std::vector<Rank>{0}, 64);
  const auto part = make_partitioning(make_br_lin());
  EXPECT_THROW(run(*part, pb), CheckError);
}

}  // namespace
}  // namespace spb::stop
