// The central correctness sweep: every algorithm must deliver every
// source's message to every rank, across machine shapes, distribution
// families, source counts and message lengths.  Parameterized so each
// combination is its own ctest case.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "stop/algorithm.h"
#include "stop/run.h"
#include "stop/verify.h"

namespace spb::stop {
namespace {

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& a : all_algorithms()) names.push_back(a->name());
  return names;
}

// ------------------------------------------------- sweep over algorithms

using SweepParam = std::tuple<std::string /*algorithm*/, int /*rows*/,
                              int /*cols*/, dist::Kind>;

class AlgorithmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgorithmSweep, BroadcastsCorrectly) {
  const auto& [name, rows, cols, kind] = GetParam();
  const auto alg = find_algorithm(name);
  const auto machine = machine::paragon(rows, cols);
  const int p = rows * cols;
  if (p == 1 && name.rfind("Part", 0) == 0)
    GTEST_SKIP() << "cannot partition a single processor";
  // A spread of source counts: 1, a few, about half, all.
  for (const int s : {1, 3, (p + 1) / 2, p}) {
    if (s > p) continue;
    const Problem pb = make_problem(machine, kind, s, 512);
    const RunResult r = run(*alg, pb);  // run() verifies internally
    EXPECT_GE(r.time_us, 0);            // p == 1 legitimately takes 0 time
    if (p > 1) {
      EXPECT_GT(r.time_us, 0);
    }
    EXPECT_EQ(r.final_payloads.size(), static_cast<std::size_t>(p));
    EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [name, rows, cols, kind] = info.param;
  std::string n = name + "_" + std::to_string(rows) + "x" +
                  std::to_string(cols) + "_" + dist::kind_name(kind);
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSweep,
    ::testing::Combine(::testing::ValuesIn(algorithm_names()),
                       ::testing::Values(4), ::testing::Values(5),
                       ::testing::Values(dist::Kind::kEqual,
                                         dist::Kind::kSquare,
                                         dist::Kind::kCross,
                                         dist::Kind::kDiagRight)),
    sweep_name);

// Mesh-shape sweep with a fixed pair of algorithms that exercise both the
// linear and the two-phase paths.
INSTANTIATE_TEST_SUITE_P(
    MeshShapes, AlgorithmSweep,
    ::testing::Combine(::testing::Values(std::string("Br_Lin"),
                                         std::string("Br_xy_source"),
                                         std::string("Repos_xy_dim"),
                                         std::string("Part_xy_source")),
                       ::testing::Values(1, 3, 7),
                       ::testing::Values(1, 6, 11),
                       ::testing::Values(dist::Kind::kEqual,
                                         dist::Kind::kRandom)),
    sweep_name);

// -------------------------------------------------------- special cases

TEST(Algorithms, SingleProcessorMachine) {
  const auto machine = machine::paragon(1, 1);
  const Problem pb = make_problem(machine, std::vector<Rank>{0}, 64);
  for (const auto& alg : all_algorithms()) {
    if (alg->name().rfind("Part", 0) == 0) continue;  // cannot split p=1
    const RunResult r = run(*alg, pb);
    EXPECT_EQ(r.final_payloads[0], mp::Payload::original(0, 64))
        << alg->name();
  }
}

TEST(Algorithms, TwoProcessors) {
  const auto machine = machine::paragon(1, 2);
  for (const auto& alg : all_algorithms()) {
    for (const int s : {1, 2}) {
      const Problem pb = make_problem(machine, dist::Kind::kEqual, s, 64);
      EXPECT_NO_THROW(run(*alg, pb)) << alg->name() << " s=" << s;
    }
  }
}

TEST(Algorithms, SingleSourceEqualsOneToAllEverywhere) {
  const auto machine = machine::paragon(4, 4);
  for (const auto& alg : all_algorithms()) {
    const Problem pb = make_problem(machine, std::vector<Rank>{9}, 2048);
    const RunResult r = run(*alg, pb);
    for (const auto& payload : r.final_payloads)
      EXPECT_EQ(payload, mp::Payload::original(9, 2048)) << alg->name();
  }
}

TEST(Algorithms, HugeAndTinyMessages) {
  const auto machine = machine::paragon(4, 4);
  for (const auto& alg : all_algorithms()) {
    for (const Bytes length : {Bytes{1}, Bytes{32}, Bytes{1 << 20}}) {
      const Problem pb = make_problem(machine, dist::Kind::kEqual, 5, length);
      EXPECT_NO_THROW(run(*alg, pb))
          << alg->name() << " L=" << length;
    }
  }
}

TEST(Algorithms, T3DConfigurationsAreCorrectToo) {
  for (const int p : {2, 13, 32}) {
    const auto machine = machine::t3d(p, /*seed=*/7);
    for (const auto& alg : all_algorithms()) {
      const Problem pb =
          make_problem(machine, dist::Kind::kRandom, (p + 2) / 3, 1024, 5);
      EXPECT_NO_THROW(run(*alg, pb)) << alg->name() << " p=" << p;
    }
  }
}

TEST(Algorithms, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const auto& alg : all_algorithms()) {
    EXPECT_TRUE(names.insert(alg->name()).second) << alg->name();
    EXPECT_EQ(find_algorithm(alg->name())->name(), alg->name());
  }
  EXPECT_EQ(names.size(), 19u);
  EXPECT_THROW(find_algorithm("nope"), CheckError);
}

TEST(Algorithms, MpiFlavorsAreSlowerOnParagon) {
  // The paper: "a performance loss of 2 to 5% in every MPI implementation".
  const auto machine = machine::paragon(8, 8);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 16, 4096);
  const double nx_two_step = run_ms(*make_two_step(false), pb);
  const double mpi_two_step = run_ms(*make_two_step(true), pb);
  EXPECT_GT(mpi_two_step, nx_two_step);
  const double nx_pers = run_ms(*make_pers_alltoall(false), pb);
  const double mpi_pers = run_ms(*make_pers_alltoall(true), pb);
  EXPECT_GT(mpi_pers, nx_pers);
}

TEST(Algorithms, DeterministicResults) {
  const auto machine = machine::paragon(6, 6);
  const Problem pb = make_problem(machine, dist::Kind::kCross, 12, 1024);
  for (const auto& alg : all_algorithms()) {
    const double a = run_ms(*alg, pb);
    const double b = run_ms(*alg, pb);
    EXPECT_EQ(a, b) << alg->name();
  }
}

}  // namespace
}  // namespace spb::stop
