#include "stop/reposition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "coll/halving.h"
#include "dist/ideal.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(PermutationPlan, FixedPointsStay) {
  // Sources already on targets do not move.
  const auto plan = PermutationPlan::match({1, 4, 7}, {2, 4, 9});
  EXPECT_EQ(plan.movers, (std::vector<Rank>{1, 7}));
  EXPECT_EQ(plan.slots, (std::vector<Rank>{2, 9}));
  EXPECT_EQ(plan.send_target(1), 2);
  EXPECT_EQ(plan.send_target(7), 9);
  EXPECT_EQ(plan.send_target(4), kNoRank);  // stays put
  EXPECT_EQ(plan.recv_origin(2), 1);
  EXPECT_EQ(plan.recv_origin(9), 7);
  EXPECT_EQ(plan.recv_origin(4), kNoRank);
  EXPECT_EQ(plan.recv_origin(1), kNoRank);
}

TEST(PermutationPlan, IdenticalSetsNeedNoTraffic) {
  const auto plan = PermutationPlan::match({0, 3}, {0, 3});
  EXPECT_TRUE(plan.movers.empty());
  EXPECT_TRUE(plan.slots.empty());
}

TEST(PermutationPlan, SizeMismatchRejected) {
  EXPECT_THROW(PermutationPlan::match({0, 1}, {2}), CheckError);
}

TEST(Repositioning, NamesFollowThePaper) {
  EXPECT_EQ(make_repositioning(make_br_lin())->name(), "Repos_Lin");
  EXPECT_EQ(make_repositioning(make_br_xy_source())->name(),
            "Repos_xy_source");
  EXPECT_EQ(make_repositioning(make_br_xy_dim())->name(), "Repos_xy_dim");
}

TEST(Repositioning, OnlyWrapsBrAlgorithms) {
  EXPECT_THROW(make_repositioning(make_two_step(false)), CheckError);
  EXPECT_THROW(make_partitioning(make_pers_alltoall(false)), CheckError);
}

TEST(Repositioning, TargetsAreIdealForTheBase) {
  const Problem pb =
      make_problem(machine::paragon(8, 8), dist::Kind::kSquare, 16, 512);
  const Frame frame = Frame::whole(pb);

  const auto repos = std::dynamic_pointer_cast<const Repositioning>(
      make_repositioning(make_br_xy_source()));
  ASSERT_NE(repos, nullptr);
  const auto targets = repos->ideal_targets(frame);
  EXPECT_EQ(targets, dist::ideal_rows(pb.grid(), 16));
}

TEST(Repositioning, RepositionedSourcesDoubleEveryIteration) {
  // After Repos_Lin's permutation the new source set must be ideal for
  // Br_Lin: activity doubles in the first iterations.
  const Problem pb =
      make_problem(machine::paragon(8, 8), dist::Kind::kSquare, 8, 512);
  const Frame frame = Frame::whole(pb);
  const auto repos = std::dynamic_pointer_cast<const Repositioning>(
      make_repositioning(make_br_lin()));
  const auto targets = repos->ideal_targets(frame);
  std::vector<char> flags(64, 0);
  for (const Rank t : targets) flags[static_cast<std::size_t>(t)] = 1;
  const auto profile = coll::HalvingSchedule::activity_profile(flags);
  EXPECT_EQ(profile[1], 16);
  EXPECT_EQ(profile[2], 32);
  EXPECT_EQ(profile[3], 64);
}

TEST(Repositioning, CorrectOnEveryDistribution) {
  const auto machine = machine::paragon(6, 8);
  for (const auto& base :
       {make_br_lin(), make_br_xy_source(), make_br_xy_dim()}) {
    const auto repos = make_repositioning(base);
    for (const dist::Kind kind : dist::all_kinds()) {
      const Problem pb = make_problem(machine, kind, 14, 1024);
      EXPECT_NO_THROW(run(*repos, pb))
          << repos->name() << " on " << dist::kind_name(kind);
    }
  }
}

TEST(Repositioning, HelpsOnSquareBlockHurtsLittleOnIdeal) {
  // The headline behaviour (paper Section 5.2): repositioning wins on the
  // difficult square-block distribution and costs only the permutation on
  // an already-ideal distribution.
  const auto machine = machine::paragon(16, 16);
  const auto base = make_br_xy_source();
  const auto repos = make_repositioning(base);

  const Problem hard = make_problem(machine, dist::Kind::kSquare, 64, 6144);
  EXPECT_LT(run_ms(*repos, hard), run_ms(*base, hard));

  const Problem easy = make_problem(
      machine, dist::ideal_rows({16, 16}, 64), 6144);
  const double base_ms = run_ms(*base, easy);
  const double repos_ms = run_ms(*repos, easy);
  EXPECT_LT(repos_ms, base_ms * 1.25)
      << "repositioning an ideal distribution should cost little";
}

TEST(Repositioning, AlwaysRepositionsEvenWhenIdeal) {
  // "Our current implementations do not check whether the initial
  // distribution is close to an ideal distribution and always reposition."
  // With the sources exactly on the ideal targets the permutation is
  // empty, so times match the base algorithm's plus nothing.
  const auto machine = machine::paragon(8, 8);
  const dist::Grid g{8, 8};
  const auto ideal = dist::ideal_rows(g, 16);
  const Problem pb = make_problem(machine, ideal, 1024);
  const auto base = make_br_xy_source();
  const auto repos = make_repositioning(base);
  EXPECT_DOUBLE_EQ(run_ms(*repos, pb), run_ms(*base, pb));
}

}  // namespace
}  // namespace spb::stop
