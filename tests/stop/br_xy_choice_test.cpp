// Unit tests for the dimension-order decisions of Br_xy_source and
// Br_xy_dim — the single rule Figure 6 hinges on.
#include <gtest/gtest.h>

#include "stop/br_xy.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

Frame frame_for(int rows, int cols, const std::vector<Rank>& sources) {
  const Problem pb =
      make_problem(machine::paragon(rows, cols), sources, 256);
  return Frame::whole(pb);
}

TEST(BrXyChoice, SourceRuleFollowsMaxCounts) {
  const BrXySource alg;
  // Row distribution R(30) on 10x10: max_r = 10 >= max_c = 3 -> columns
  // first (rows_first == false).
  const Problem row_pb =
      make_problem(machine::paragon(10, 10), dist::Kind::kRow, 30, 256);
  EXPECT_FALSE(alg.rows_first(Frame::whole(row_pb)));
  // Column distribution: max_r = 3 < max_c = 10 -> rows first.
  const Problem col_pb =
      make_problem(machine::paragon(10, 10), dist::Kind::kColumn, 30, 256);
  EXPECT_TRUE(alg.rows_first(Frame::whole(col_pb)));
}

TEST(BrXyChoice, SourceRuleTieGoesToColumns) {
  // "If max_r < max_c, rows are selected first.  Otherwise, the columns."
  const BrXySource alg;
  // One source: max_r == max_c == 1 -> columns first.
  EXPECT_FALSE(alg.rows_first(frame_for(4, 4, {5})));
  // Perfect diagonal: equal counts everywhere -> columns first.
  EXPECT_FALSE(alg.rows_first(frame_for(4, 4, {0, 5, 10, 15})));
}

TEST(BrXyChoice, DimRuleUsesShapeOnly) {
  const BrXyDim alg;
  // "Br_xy_dim selects the rows if r >= c."
  EXPECT_TRUE(alg.rows_first(frame_for(4, 4, {0})));   // square: rows
  EXPECT_TRUE(alg.rows_first(frame_for(6, 4, {0})));   // tall: rows
  EXPECT_FALSE(alg.rows_first(frame_for(4, 6, {0})));  // wide: columns
  // The sources are irrelevant to Br_xy_dim.
  const Problem row_pb =
      make_problem(machine::paragon(4, 6), dist::Kind::kRow, 12, 256);
  const Problem col_pb =
      make_problem(machine::paragon(4, 6), dist::Kind::kColumn, 12, 256);
  EXPECT_EQ(alg.rows_first(Frame::whole(row_pb)),
            alg.rows_first(Frame::whole(col_pb)));
}

TEST(BrXyChoice, AlgorithmsAgreeWhenTheRuleAgrees) {
  // For the column distribution on a square mesh both rules choose rows
  // first, so their runs must be identical (same plan, same timing).
  const Problem pb =
      make_problem(machine::paragon(8, 8), dist::Kind::kColumn, 16, 1024);
  EXPECT_DOUBLE_EQ(run_ms(*make_br_xy_source(), pb),
                   run_ms(*make_br_xy_dim(), pb));
}

TEST(BrXyChoice, SourceRuleBeatsOrMatchesDimRule) {
  // Br_xy_source exists because its choice adapts; over the distribution
  // families it must never lose meaningfully to the blind rule.  (On
  // balanced patterns — diagonals, bands — the two rules pick opposite
  // but equally valid orders and physical effects give either a few
  // percent; 5% headroom covers that.)
  const auto machine = machine::paragon(10, 10);
  for (const dist::Kind kind : dist::all_kinds()) {
    const Problem pb = make_problem(machine, kind, 30, 2048);
    EXPECT_LE(run_ms(*make_br_xy_source(), pb),
              run_ms(*make_br_xy_dim(), pb) * 1.05)
        << dist::kind_name(kind);
  }
}

}  // namespace
}  // namespace spb::stop
