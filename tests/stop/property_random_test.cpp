// Property-based randomized harness: a seeded generator draws problem
// tuples (mesh shape — including non-power-of-two and degenerate 1xN —
// source count, message length, distribution) and pushes every algorithm
// in the registry through stop::run's verification, healthy and under a
// randomly drawn fault plan.
//
// The seed rotates in the nightly CI job via SPB_PROPERTY_SEED; any
// failure message leads with the reproduction command so a red nightly is
// a one-line local repro:
//
//   SPB_PROPERTY_SEED=<seed> ./build/tests/test_property
//
// SPB_PROPERTY_ITERS overrides the iteration count (nightly runs more).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): gtest runs tests single-threaded
  // and the seed is read once before any simulation starts.
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

struct Case {
  int rows = 1, cols = 1;
  int s = 1;
  Bytes bytes = 0;
  dist::Kind kind = dist::Kind::kEqual;
  std::uint64_t dist_seed = 1;
  fault::FaultSpec faults{};  // default: healthy run
  std::uint64_t fault_seed = 1;

  std::string describe() const {
    std::ostringstream os;
    os << rows << "x" << cols << " s=" << s << " L=" << bytes << " dist="
       << dist::kind_name(kind) << "(seed " << dist_seed << ")";
    if (faults.any())
      os << " faults=" << fault_seed << ":" << faults.to_string();
    return os.str();
  }
};

/// Draws one problem tuple.  Every value the case depends on comes from
/// `rng`, so the whole run replays from the top-level seed alone.
Case draw_case(Rng& rng) {
  Case c;
  c.rows = static_cast<int>(rng.next_in(1, 6));
  c.cols = static_cast<int>(rng.next_in(1, 7));
  const int p = c.rows * c.cols;
  c.s = static_cast<int>(rng.next_in(1, p));
  // Mix round and awkward lengths; 1-byte messages are legal.
  const Bytes lengths[] = {1, 17, 256, 1000, 1024, 4096};
  c.bytes = lengths[rng.next_below(std::size(lengths))];
  const auto kinds = dist::all_kinds();
  c.kind = kinds[rng.next_below(kinds.size())];
  c.dist_seed = rng.next_u64() | 1;
  if (rng.next_double() < 0.5) {
    // Half the cases replay under an adverse machine.  Intensities stay
    // inside the acceptance envelope (drops <= 10%, 4x links, straggler).
    c.faults.drop_rate = rng.next_double() * 0.1;
    c.faults.dup_rate = rng.next_double() * 0.05;
    if (rng.next_double() < 0.5) {
      c.faults.link_fraction = 0.25;
      c.faults.bandwidth_divisor = 4.0;
      c.faults.latency_factor = 2.0;
    }
    if (rng.next_double() < 0.5) {
      c.faults.stragglers = 1;
      c.faults.straggle_factor = 3.0;
    }
    c.fault_seed = rng.next_u64() | 1;
  }
  return c;
}

TEST(PropertyRandom, EveryAlgorithmVerifiesOnRandomProblems) {
  const std::uint64_t seed = env_u64("SPB_PROPERTY_SEED", 20260807);
  const std::uint64_t iters = env_u64("SPB_PROPERTY_ITERS", 10);
  const std::vector<AlgorithmPtr> algorithms = all_algorithms();
  Rng rng(seed);

  for (std::uint64_t i = 0; i < iters; ++i) {
    const Case c = draw_case(rng);
    const Problem pb = make_problem(machine::paragon(c.rows, c.cols), c.kind,
                                    c.s, c.bytes, c.dist_seed);
    RunOptions opt;
    opt.faults = c.faults;
    opt.fault_seed = c.fault_seed;
    for (const AlgorithmPtr& alg : algorithms) {
      if (pb.p() == 1 && alg->name().rfind("Part", 0) == 0)
        continue;  // partitioning needs two processors
      try {
        const RunResult r = run(*alg, pb, opt);  // verifies internally
        EXPECT_EQ(r.final_payloads.size(), static_cast<std::size_t>(pb.p()));
      } catch (const std::exception& e) {
        ADD_FAILURE() << "reproduce with: SPB_PROPERTY_SEED=" << seed
                      << " ./build/tests/test_property\n"
                      << "iteration " << i << ": " << alg->name() << " on "
                      << c.describe() << "\n"
                      << e.what();
        return;  // later iterations would drift from the failing draw
      }
    }
  }
}

TEST(PropertyRandom, FaultedRunsReplayByteIdentical) {
  // The determinism half of the property: re-running the exact draw gives
  // the same makespan and the same fault counters.
  const std::uint64_t seed = env_u64("SPB_PROPERTY_SEED", 20260807);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 3; ++i) {
    Case c = draw_case(rng);
    if (!c.faults.any()) {  // force an adverse draw
      c.faults.drop_rate = 0.1;
      c.faults.stragglers = 1;
      c.faults.straggle_factor = 2.0;
    }
    const Problem pb = make_problem(machine::paragon(c.rows, c.cols), c.kind,
                                    c.s, c.bytes, c.dist_seed);
    RunOptions opt;
    opt.faults = c.faults;
    opt.fault_seed = c.fault_seed;
    const auto alg = make_br_xy_source();
    const RunResult a = run(*alg, pb, opt);
    const RunResult b = run(*alg, pb, opt);
    EXPECT_EQ(a.time_us, b.time_us) << c.describe();
    EXPECT_EQ(a.outcome.metrics.retransmits, b.outcome.metrics.retransmits)
        << c.describe();
    EXPECT_EQ(a.outcome.metrics.duplicates, b.outcome.metrics.duplicates)
        << c.describe();
    EXPECT_EQ(a.outcome.events, b.outcome.events) << c.describe();
  }
}

}  // namespace
}  // namespace spb::stop
