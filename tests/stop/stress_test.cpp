// Full-scale stress: the paper's largest configuration (256 processors),
// every algorithm, verified.  This is the slowest test in the suite by
// design — it exercises the simulator at the event counts the benches
// reach (PersAlltoAll moves 65k messages here).
#include <gtest/gtest.h>

#include "stop/algorithm.h"
#include "stop/allgatherv_rd.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(Stress, EveryAlgorithmAt256Paragon) {
  const auto machine = machine::paragon(16, 16);
  for (const auto& alg : all_algorithms()) {
    const Problem pb = make_problem(machine, dist::Kind::kEqual, 100, 4096);
    const RunResult r = run(*alg, pb);  // verifies internally
    EXPECT_GT(r.time_us, 0) << alg->name();
  }
}

TEST(Stress, PersAlltoAllFullMachineFullSources) {
  // 256 sources x 255 destinations = 65280 messages through the mesh.
  const auto machine = machine::paragon(16, 16);
  const Problem pb = make_problem(machine, dist::Kind::kEqual, 256, 1024);
  const RunResult r = run(*make_pers_alltoall(false), pb);
  EXPECT_EQ(r.outcome.metrics.total_sends, 256u * 255u);
}

TEST(Stress, T3DAt256) {
  const auto machine = machine::t3d(256);
  for (const auto& alg :
       {make_two_step(true), make_pers_alltoall(true), make_br_lin(),
        make_allgatherv_rd()}) {
    const Problem pb = make_problem(machine, dist::Kind::kRandom, 64, 4096, 9);
    EXPECT_NO_THROW(run(*alg, pb)) << alg->name();
  }
}

}  // namespace
}  // namespace spb::stop
