// The hierarchical stop algorithms (Hier_Lin, Hier_2Step): correctness on
// the two-level cluster machines they are designed for, on flat meshes
// (where the row/column grid plays the node/core role), and on the
// degenerate shapes where one of the three phases vanishes — a single
// node (no leader exchange), one core per node (no gather, no fanout),
// and a single processor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stop/algorithm.h"
#include "stop/hierarchical.h"
#include "stop/run.h"
#include "stop/verify.h"

namespace spb::stop {
namespace {

std::vector<AlgorithmPtr> hier_algorithms() {
  std::vector<AlgorithmPtr> algs;
  algs.push_back(make_hier_lin());
  algs.push_back(make_hier_2step());
  return algs;
}

void expect_hier_verify(const machine::MachineConfig& machine, int s,
                        Bytes length = 512) {
  for (const dist::Kind kind :
       {dist::Kind::kEqual, dist::Kind::kRandom, dist::Kind::kDiagRight}) {
    const Problem pb = make_problem(machine, kind, s, length, /*seed=*/11);
    for (const AlgorithmPtr& alg : hier_algorithms()) {
      const RunResult r = run(*alg, pb);  // run() verifies internally
      EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok)
          << alg->name() << " on " << machine.name << " s=" << s << " "
          << dist::kind_name(kind);
    }
  }
}

TEST(Hierarchical, RegisteredWithFinalNames) {
  EXPECT_EQ(make_hier_lin()->name(), "Hier_Lin");
  EXPECT_EQ(make_hier_2step()->name(), "Hier_2Step");
  EXPECT_EQ(find_algorithm("Hier_Lin")->name(), "Hier_Lin");
  EXPECT_EQ(find_algorithm("Hier_2Step")->name(), "Hier_2Step");
  EXPECT_FALSE(make_hier_lin()->mpi_flavored());
}

TEST(Hierarchical, CorrectOnClusterMachines) {
  const auto machine = machine::cluster(8, 4);
  for (const int s : {1, 3, 16, 32}) expect_hier_verify(machine, s);
}

TEST(Hierarchical, CorrectOnOddClusterShapes) {
  expect_hier_verify(machine::cluster(3, 5), 7);
  expect_hier_verify(machine::cluster(5, 3), 15);
}

TEST(Hierarchical, SingleNodeClusterSkipsTheLeaderExchange) {
  // One node: the leader set is a singleton, so the whole broadcast is the
  // node-local gather + fanout.
  expect_hier_verify(machine::cluster(1, 8), 1);
  expect_hier_verify(machine::cluster(1, 8), 8);
}

TEST(Hierarchical, OneCorePerNodeReducesToLeaderAllgather) {
  // Every rank is its own leader: no gather, no fanout, just the
  // inter-node halving exchange.
  expect_hier_verify(machine::cluster(6, 1), 1);
  expect_hier_verify(machine::cluster(6, 1), 6);
}

TEST(Hierarchical, FlatMeshesAndDegenerateGrids) {
  expect_hier_verify(machine::paragon(4, 5), 10);
  expect_hier_verify(machine::paragon(1, 8), 4);  // a single row
  expect_hier_verify(machine::paragon(8, 1), 4);  // a single column
}

TEST(Hierarchical, SingleProcessor) {
  const Problem pb =
      make_problem(machine::paragon(1, 1), std::vector<Rank>{0}, 64);
  for (const AlgorithmPtr& alg : hier_algorithms()) {
    const RunResult r = run(*alg, pb);
    EXPECT_EQ(r.final_payloads[0], mp::Payload::original(0, 64))
        << alg->name();
  }
}

TEST(Hierarchical, SingleSourceMatchesOriginalEverywhere) {
  const auto machine = machine::cluster(4, 4);
  const Problem pb = make_problem(machine, std::vector<Rank>{9}, 2048);
  for (const AlgorithmPtr& alg : hier_algorithms()) {
    const RunResult r = run(*alg, pb);
    for (const auto& payload : r.final_payloads)
      EXPECT_EQ(payload, mp::Payload::original(9, 2048)) << alg->name();
  }
}

TEST(Hierarchical, VariedLengthsVerify) {
  const auto machine = machine::cluster(8, 4);
  Problem pb = make_problem(machine, dist::Kind::kRandom, 9, 2048, 3);
  pb = with_varied_lengths(std::move(pb), 0.5, 21);
  for (const AlgorithmPtr& alg : hier_algorithms()) {
    const RunResult r = run(*alg, pb);
    EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok) << alg->name();
  }
}

TEST(Hierarchical, DeterministicResults) {
  const auto machine = machine::cluster(8, 4);
  const Problem pb = make_problem(machine, dist::Kind::kCross, 12, 1024);
  for (const AlgorithmPtr& alg : hier_algorithms()) {
    const double a = run_ms(*alg, pb);
    const double b = run_ms(*alg, pb);
    EXPECT_EQ(a, b) << alg->name();
  }
}

TEST(Hierarchical, BeatsFlatHalvingOnTheClusterTiering) {
  // The point of the hierarchy: on a machine whose inter-node mesh is 4x
  // slower than the node-local crossbar, confining the long-haul exchange
  // to one leader per node beats running the flat halving pattern across
  // all cores — up to the crossover where every core is a source and the
  // serialized node-local gather eats the savings (flat halving on the
  // node-major rank layout keeps its low-distance iterations on the
  // crossbar for free).
  const auto machine = machine::cluster(8, 4);
  for (const int s : {4, 8, 16}) {
    const Problem pb = make_problem(machine, dist::Kind::kEqual, s, 8192);
    const double hier = run_ms(*make_hier_lin(), pb);
    const double flat = run_ms(*make_br_lin(), pb);
    EXPECT_LT(hier, flat) << "s=" << s;
  }
}

}  // namespace
}  // namespace spb::stop
