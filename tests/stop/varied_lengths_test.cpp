// Different-length messages (paper Section 5): "using different length
// messages did not influence the performance of the algorithms
// significantly.  In particular, for a given algorithm, a good
// distribution remains a good distribution when the length of messages
// varies."
#include <gtest/gtest.h>

#include "common/check.h"
#include "stop/algorithm.h"
#include "stop/run.h"
#include "stop/verify.h"

namespace spb::stop {
namespace {

TEST(VariedLengths, EveryAlgorithmBroadcastsCorrectly) {
  const auto machine = machine::paragon(6, 8);
  Problem pb = make_problem(machine, dist::Kind::kEqual, 12, 2048);
  pb = with_varied_lengths(std::move(pb), /*spread=*/0.5, /*seed=*/11);
  // The jitter actually produced distinct sizes.
  bool distinct = false;
  for (std::size_t i = 1; i < pb.per_source_bytes.size(); ++i)
    distinct |= pb.per_source_bytes[i] != pb.per_source_bytes[0];
  ASSERT_TRUE(distinct);
  for (const auto& alg : all_algorithms()) {
    const RunResult r = run(*alg, pb);
    EXPECT_TRUE(verify_broadcast(pb, r.final_payloads).ok) << alg->name();
  }
}

TEST(VariedLengths, ExpectedPayloadCarriesPerSourceSizes) {
  auto machine = machine::paragon(2, 2);
  Problem pb = make_problem(machine, std::vector<Rank>{0, 3}, 100);
  pb.per_source_bytes = {70, 130};
  pb.validate();
  EXPECT_EQ(expected_payload(pb), mp::Payload::of({{0, 70}, {3, 130}}));
  EXPECT_EQ(pb.bytes_of_source(0), 70u);
  EXPECT_EQ(pb.bytes_of_source(1), 130u);
}

TEST(VariedLengths, ValidationCatchesMisalignedSizes) {
  auto machine = machine::paragon(2, 2);
  Problem pb = make_problem(machine, std::vector<Rank>{0, 3}, 100);
  pb.per_source_bytes = {70};
  EXPECT_THROW(pb.validate(), CheckError);
  pb.per_source_bytes = {70, 0};
  EXPECT_THROW(pb.validate(), CheckError);
  EXPECT_THROW(with_varied_lengths(pb, 1.5, 1), CheckError);
}

TEST(VariedLengths, JitterIsSeededAndBounded) {
  const auto machine = machine::paragon(4, 4);
  const Problem base = make_problem(machine, dist::Kind::kEqual, 8, 1000);
  const Problem a = with_varied_lengths(base, 0.3, 5);
  const Problem b = with_varied_lengths(base, 0.3, 5);
  const Problem c = with_varied_lengths(base, 0.3, 6);
  EXPECT_EQ(a.per_source_bytes, b.per_source_bytes);
  EXPECT_NE(a.per_source_bytes, c.per_source_bytes);
  for (const Bytes v : a.per_source_bytes) {
    EXPECT_GE(v, 700u);
    EXPECT_LE(v, 1300u);
  }
}

TEST(VariedLengths, GoodDistributionsStayGood) {
  // The paper's claim: the distribution ranking is stable under length
  // variation.  Row must stay cheaper than cross for Br_xy_source whether
  // lengths are uniform or jittered by +-50%.
  const auto machine = machine::paragon(10, 10);
  const auto alg = make_br_xy_source();
  const Problem row_u = make_problem(machine, dist::Kind::kRow, 30, 4096);
  const Problem cross_u =
      make_problem(machine, dist::Kind::kCross, 30, 4096);
  EXPECT_LT(run_ms(*alg, row_u), run_ms(*alg, cross_u));
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Problem row_v = with_varied_lengths(row_u, 0.5, seed);
    const Problem cross_v = with_varied_lengths(cross_u, 0.5, seed);
    EXPECT_LT(run_ms(*alg, row_v), run_ms(*alg, cross_v))
        << "seed " << seed;
  }
}

TEST(VariedLengths, PerformanceStaysCloseToUniform) {
  // "...did not influence the performance significantly": same total
  // volume, jittered sizes, within a modest band of the uniform run.
  const auto machine = machine::paragon(8, 8);
  for (const auto& alg :
       {make_br_lin(), make_two_step(false), make_pers_alltoall(false)}) {
    const Problem uniform =
        make_problem(machine, dist::Kind::kEqual, 16, 4096);
    const Problem varied = with_varied_lengths(uniform, 0.4, 9);
    const double u = run_ms(*alg, uniform);
    const double v = run_ms(*alg, varied);
    EXPECT_GT(v, u * 0.7) << alg->name();
    EXPECT_LT(v, u * 1.3) << alg->name();
  }
}

}  // namespace
}  // namespace spb::stop
