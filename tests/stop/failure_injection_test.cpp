// Failure injection: sabotage algorithms in targeted ways and verify the
// harness catches every class of fault — wrong results via verification,
// hangs via deadlock detection, plan inconsistencies via the engine's
// preconditions.  A verifier that never fires is no verifier.
#include <gtest/gtest.h>

#include <memory>

#include "coll/engine.h"
#include "coll/halving.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

Problem small_problem() {
  return make_problem(machine::paragon(2, 4), std::vector<Rank>{1, 5}, 256);
}

/// Runs Br_Lin but rank `victim` drops one chunk at the end.
class DropsChunk final : public Algorithm {
 public:
  explicit DropsChunk(Rank victim) : victim_(victim) {}
  std::string name() const override { return "DropsChunk"; }
  ProgramFactory prepare(const Frame& frame) const override {
    ProgramFactory inner = make_br_lin()->prepare(frame);
    const Rank victim = victim_;
    return [inner, victim](mp::Comm& comm, mp::Payload& data) {
      return sabotage(comm, data, inner, victim);
    };
  }

 private:
  static sim::Task sabotage(mp::Comm& comm, mp::Payload& data,
                            ProgramFactory inner, Rank victim) {
    co_await inner(comm, data);
    if (comm.rank() == victim) {
      // Lose the first source's chunk.
      std::vector<mp::Chunk> chunks(data.chunks().begin() + 1,
                                    data.chunks().end());
      data = mp::Payload::of(std::move(chunks));
    }
  }
  Rank victim_;
};

TEST(FailureInjection, VerificationCatchesDroppedChunk) {
  const Problem pb = small_problem();
  const DropsChunk bad(3);
  try {
    run(bad, pb);
    FAIL() << "expected verification to throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 3"), std::string::npos)
        << e.what();
  }
}

TEST(FailureInjection, VerificationCanBeDisabledForProfiling) {
  const Problem pb = small_problem();
  const DropsChunk bad(3);
  EXPECT_NO_THROW(run(bad, pb, {.verify = false}));
}

/// Rank 0 waits for a message nobody sends.
class HangsForever final : public Algorithm {
 public:
  std::string name() const override { return "HangsForever"; }
  ProgramFactory prepare(const Frame& frame) const override {
    ProgramFactory inner = make_br_lin()->prepare(frame);
    return [inner](mp::Comm& comm, mp::Payload& data) {
      return hang(comm, data, inner);
    };
  }

 private:
  static sim::Task hang(mp::Comm& comm, mp::Payload& data,
                        ProgramFactory inner) {
    co_await inner(comm, data);
    if (comm.rank() == 0)
      (void)co_await comm.recv(1, /*tag=*/17);  // never sent
  }
};

TEST(FailureInjection, DeadlockDetectorNamesTheStuckRank) {
  const Problem pb = small_problem();
  const HangsForever bad;
  try {
    run(bad, pb);
    FAIL() << "expected DeadlockError";
  } catch (const mp::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 of 8"), std::string::npos) << what;
    // The diagnostic names the stuck rank, the receive filter including
    // its pinned tag, and (here) that the mailbox holds nothing usable.
    EXPECT_NE(what.find("rank 0 blocked in recv(1, tag=17)"),
              std::string::npos)
        << what;
  }
}

/// A schedule that marks an empty rank as a sender must trip the engine's
/// precondition, not silently send garbage.
TEST(FailureInjection, EngineRejectsInconsistentPlan) {
  const auto machine = machine::paragon(1, 2);
  mp::Runtime rt = machine.make_runtime(false);
  auto seq = std::make_shared<const std::vector<Rank>>(
      std::vector<Rank>{0, 1});
  // Claim rank 0 holds data although its payload is empty.
  auto sched = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute({1, 0}));
  mp::Payload d0;  // empty, contradicting the schedule
  mp::Payload d1;
  rt.spawn(0, coll::run_halving(rt.comm(0), seq, 0, sched, d0, {}));
  rt.spawn(1, coll::run_halving(rt.comm(1), seq, 1, sched, d1, {}));
  EXPECT_THROW(rt.run(), CheckError);
}

/// A message delivering a duplicate source through a non-dedup merge is an
/// algorithm bug and must surface as CheckError, not silent corruption.
TEST(FailureInjection, DuplicateDeliveryIsLoud) {
  const auto machine = machine::paragon(1, 2);
  mp::Runtime rt = machine.make_runtime(false);
  struct Progs {
    static sim::Task sender(mp::Comm& comm) {
      mp::Payload a = mp::Payload::original(0, 64);
      co_await comm.send(1, a);
      co_await comm.send(1, a);  // the same original twice
    }
    static sim::Task receiver(mp::Comm& comm, mp::Payload& data) {
      mp::Message m1 = co_await comm.recv(0);
      mp::Message m2 = co_await comm.recv(0);
      data.merge(m1.payload);
      data.merge(m2.payload);  // duplicate source 0: must throw
    }
  };
  mp::Payload sink;
  rt.spawn(0, Progs::sender(rt.comm(0)));
  rt.spawn(1, Progs::receiver(rt.comm(1), sink));
  EXPECT_THROW(rt.run(), CheckError);
}

}  // namespace
}  // namespace spb::stop
