// Cross-cutting invariants, swept over every algorithm on both machines:
// conservation (every send is received), physical lower bounds (no run
// finishes faster than its own byte movement allows), and metric sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& a : all_algorithms()) names.push_back(a->name());
  return names;
}

using Param = std::tuple<std::string, bool /*t3d*/>;

class InvariantSweep : public ::testing::TestWithParam<Param> {};

TEST_P(InvariantSweep, ConservationBoundsAndSanity) {
  const auto& [name, on_t3d] = GetParam();
  const auto alg = find_algorithm(name);
  const machine::MachineConfig machine =
      on_t3d ? machine::t3d(36) : machine::paragon(6, 6);
  const Problem pb = make_problem(machine, dist::Kind::kRandom, 9, 2048, 4);
  const RunResult r = run(*alg, pb);
  const auto& m = r.outcome.metrics;

  // Conservation: every message sent is received, and the network saw
  // exactly that many transfers.
  EXPECT_EQ(m.total_sends, m.total_recvs);
  EXPECT_EQ(r.outcome.network.transfers, m.total_sends);

  // Physical lower bound: the slowest rank received at least the s-1
  // foreign originals; ejecting those bytes takes wire time, and each
  // message costs at least the receive overhead.
  const double foreign_bytes = 8.0 * 2048.0;
  const double lower =
      foreign_bytes / machine.net.bytes_per_us +
      machine.comm.recv_overhead_us;
  EXPECT_GE(r.time_us, lower) << name;

  // Metric sanity.
  EXPECT_LE(m.av_act_proc, static_cast<double>(pb.p()));
  EXPECT_GT(m.av_act_proc, 0.0);
  EXPECT_GE(m.congestion, 1u);
  EXPECT_GE(m.av_msg_lgth, 2048.0);  // at least one original per message
  EXPECT_GT(r.outcome.network.total_bytes, foreign_bytes);

  // The per-link busy times must sum to the aggregate counter.
  double sum = 0;
  for (const double b : r.outcome.link_busy_us) sum += b;
  EXPECT_NEAR(sum, r.outcome.network.total_link_busy_us,
              1e-6 * std::max(1.0, sum));
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = std::get<0>(info.param) +
                  (std::get<1>(info.param) ? "_t3d" : "_paragon");
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, InvariantSweep,
    ::testing::Combine(::testing::ValuesIn(algorithm_names()),
                       ::testing::Bool()),
    param_name);

}  // namespace
}  // namespace spb::stop
