// Tests for the adaptive repositioner — the paper's future-work hint made
// concrete: analyze the input distribution, reposition only when it pays.
#include <gtest/gtest.h>

#include "dist/ideal.h"
#include "stop/adaptive_repos.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

const AdaptiveRepositioning& as_adaptive(const AlgorithmPtr& p) {
  return dynamic_cast<const AdaptiveRepositioning&>(*p);
}

TEST(AdaptiveRepos, SkipsOnIdealInput) {
  const auto alg = make_adaptive_repositioning(make_br_xy_source());
  const auto machine = machine::paragon(16, 16);
  const Problem pb =
      make_problem(machine, dist::ideal_rows({16, 16}, 64), 6144);
  EXPECT_FALSE(as_adaptive(alg).should_reposition(Frame::whole(pb)));
  // Skipping means byte-identical behaviour to the plain base.
  EXPECT_DOUBLE_EQ(run_ms(*alg, pb), run_ms(*make_br_xy_source(), pb));
}

TEST(AdaptiveRepos, RepositionsOnHardInput) {
  const auto alg = make_adaptive_repositioning(make_br_xy_source());
  const auto machine = machine::paragon(16, 16);
  for (const dist::Kind kind : {dist::Kind::kCross, dist::Kind::kSquare}) {
    const Problem pb = make_problem(machine, kind, 64, 6144);
    EXPECT_TRUE(as_adaptive(alg).should_reposition(Frame::whole(pb)))
        << dist::kind_name(kind);
    EXPECT_DOUBLE_EQ(
        run_ms(*alg, pb),
        run_ms(*make_repositioning(make_br_xy_source()), pb))
        << dist::kind_name(kind);
  }
}

TEST(AdaptiveRepos, SkipsOnNearIdealBand) {
  // The paper: band on a square mesh behaves like an ideal distribution,
  // so repositioning it only costs.  The adaptive rule must skip... or at
  // worst reposition without losing much; the hard requirement is the
  // aggregate one below.
  const auto alg = make_adaptive_repositioning(make_br_xy_source());
  const auto machine = machine::paragon(16, 16);
  const Problem pb = make_problem(machine, dist::Kind::kBand, 64, 6144);
  const double adaptive = run_ms(*alg, pb);
  const double base = run_ms(*make_br_xy_source(), pb);
  EXPECT_LE(adaptive, base * 1.10);
}

TEST(AdaptiveRepos, TracksTheBetterChoiceEverywhere) {
  // The whole point: across every distribution family the adaptive
  // algorithm lands within a few percent of min(base, repositioned).
  const auto machine = machine::paragon(16, 16);
  const auto base = make_br_xy_source();
  const auto repos = make_repositioning(base);
  const auto adaptive = make_adaptive_repositioning(base);
  for (const dist::Kind kind : dist::all_kinds()) {
    const Problem pb = make_problem(machine, kind, 75, 6144);
    const double best =
        std::min(run_ms(*base, pb), run_ms(*repos, pb));
    EXPECT_LE(run_ms(*adaptive, pb), best * 1.12) << dist::kind_name(kind);
  }
}

TEST(AdaptiveRepos, WorksForEveryBrBase) {
  const auto machine = machine::paragon(6, 9);
  for (const auto& base :
       {make_br_lin(), make_br_xy_source(), make_br_xy_dim()}) {
    const auto alg = make_adaptive_repositioning(base);
    EXPECT_EQ(alg->name(), "AdaptiveRepos_" + base->name().substr(3));
    const Problem pb = make_problem(machine, dist::Kind::kRandom, 13, 1024, 2);
    EXPECT_NO_THROW(run(*alg, pb)) << alg->name();
  }
}

TEST(AdaptiveRepos, EdgeCases) {
  const auto alg = make_adaptive_repositioning(make_br_lin());
  // Single processor: nothing to move.
  const Problem solo =
      make_problem(machine::paragon(1, 1), std::vector<Rank>{0}, 64);
  EXPECT_FALSE(as_adaptive(alg).should_reposition(Frame::whole(solo)));
  EXPECT_NO_THROW(run(*alg, solo));
  // All sources: every placement is the same set.
  const Problem full =
      make_problem(machine::paragon(3, 3), dist::Kind::kEqual, 9, 64);
  EXPECT_NO_THROW(run(*alg, full));
}

}  // namespace
}  // namespace spb::stop
