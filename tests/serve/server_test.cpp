// serve::Server behavior: coalescing under simultaneous identical
// requests (exactly one planner invocation), bounded-queue load shedding
// with well-formed responses, in-order output, byte-identity across
// worker counts, the stats fence, and error recovery.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"

namespace spb::serve {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Server, CoalescesSimultaneousIdenticalRequests) {
  // K workers all start the same plan request at the same time (a gate in
  // job_hook holds them until all K are in flight): the planner must run
  // exactly once, and every response must be identical.
  constexpr int kConcurrent = 4;
  std::atomic<int> plans{0};
  std::atomic<int> in_jobs{0};
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = kConcurrent;
  options.job_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    if (in_jobs.fetch_add(1) + 1 == kConcurrent) {
      open = true;
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return open; });
    }
  };
  options.plan_hook = [&] { plans.fetch_add(1); };

  std::ostringstream out;
  {
    Server server(options, out);
    for (int i = 0; i < kConcurrent; ++i)
      server.submit_line(R"({"op":"plan","dist":"R","sources":4,"len":2048})");
    server.drain();

    EXPECT_EQ(plans.load(), 1);
    const plan::CacheStats stats = server.cache_stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kConcurrent) - 1);
    // A racer that reaches the cache after the owner publishes lands as a
    // plain LRU hit, so only an upper bound on coalesced is deterministic.
    EXPECT_LE(stats.coalesced, static_cast<std::uint64_t>(kConcurrent) - 1);
  }
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kConcurrent));
  // Identical requests, identical responses — only the echoed id differs.
  const std::string body0 = lines[0].substr(lines[0].find(','));
  for (const std::string& line : lines) {
    EXPECT_EQ(line.substr(line.find(',')), body0);
    EXPECT_EQ(test::MiniJson::validate(line), std::string::npos);
  }
}

TEST(Server, BoundedQueueShedsWithWellFormedResponses) {
  // One worker, held inside its first job; queue bounded at 2.  The two
  // lines behind the running job queue up, everything further is answered
  // "overloaded" immediately — and every single submission gets exactly
  // one response.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};

  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 1;
  options.max_queue = 2;
  options.job_hook = [&] {
    started.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  std::ostringstream out;
  constexpr int kTotal = 6;
  {
    Server server(options, out);
    server.submit_line(R"({"op":"plan","dist":"R","sources":4,"len":2048})");
    while (started.load() < 1) std::this_thread::yield();  // job 0 running
    for (int i = 1; i < kTotal; ++i)
      server.submit_line(R"({"op":"plan","dist":"R","sources":4,"len":2048})");

    // Jobs 1 and 2 fit the queue; 3..5 were shed synchronously (the
    // counters say so only after the ordered flush, checked post-drain —
    // a shed response for seq N cannot flush while seq 0 is still open).
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    server.drain();
    EXPECT_EQ(server.counters().shed, 3u);
    EXPECT_EQ(server.counters().plan, 3u);
    EXPECT_EQ(server.counters().errors, 0u);
    EXPECT_EQ(server.queue_max_depth(), 2u);
  }

  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kTotal));
  int shed = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(test::MiniJson::validate(line), std::string::npos);
    if (line.find("\"error\":\"overloaded\"") != std::string::npos) {
      ++shed;
      EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    }
  }
  EXPECT_EQ(shed, 3);
}

TEST(Server, ShedCannotHappenUnderBlockingSubmission) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 2;
  options.max_queue = 2;  // tiny on purpose

  std::ostringstream out;
  {
    Server server(options, out);
    for (int i = 0; i < 64; ++i)
      server.submit_line_wait(
          R"({"op":"plan","dist":"R","sources":4,"len":2048})");
    server.drain();
    EXPECT_EQ(server.counters().shed, 0u);
    EXPECT_EQ(server.counters().plan, 64u);
  }
  EXPECT_EQ(lines_of(out.str()).size(), 64u);
}

TEST(Server, OutputIsInSubmissionOrder) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 4;

  std::ostringstream out;
  {
    Server server(options, out);
    // Distinct ids in submission order; varied work so completion order
    // scrambles with 4 workers.
    for (int i = 0; i < 40; ++i) {
      std::ostringstream line;
      line << "{\"op\":\"plan\",\"id\":" << 1000 + i
           << ",\"dist\":\"" << (i % 2 == 0 ? "R" : "B")
           << "\",\"sources\":" << (i % 3 == 0 ? 4 : 8)
           << ",\"len\":" << 512 * (1 + i % 5) << "}";
      server.submit_line_wait(line.str());
    }
    server.drain();
  }
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    const std::string want = "{\"id\":" + std::to_string(1000 + i) + ",";
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].substr(0, want.size()), want)
        << "response " << i << " out of order";
  }
}

std::string serve_trace(int workers, const std::vector<std::string>& trace) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = workers;
  std::ostringstream out;
  {
    Server server(options, out);
    for (const std::string& line : trace) server.submit_line_wait(line);
    server.drain();
  }
  return out.str();
}

TEST(Server, ByteIdenticalAcrossWorkerCounts) {
  std::vector<std::string> trace;
  for (int i = 0; i < 30; ++i) {
    std::ostringstream line;
    line << "{\"op\":\"plan\",\"dist\":\"" << (i % 2 == 0 ? "R" : "Sq")
         << "\",\"sources\":" << (i % 4 == 0 ? 4 : 6)
         << ",\"len\":" << 1024 * (1 + i % 3) << "}";
    trace.push_back(line.str());
  }
  trace.push_back(R"({"op":"execute","dist":"R","sources":4,"len":1024})");
  trace.push_back(R"({"op":"stats","deterministic":true})");
  trace.push_back("not json at all");
  trace.push_back(R"({"op":"plan","dist":"R","sources":4,"len":1024,"ranked":true})");

  const std::string w1 = serve_trace(1, trace);
  const std::string w2 = serve_trace(2, trace);
  const std::string w8 = serve_trace(8, trace);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST(Server, StatsFenceCoversExactlyEarlierRequests) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 4;

  std::ostringstream out;
  {
    Server server(options, out);
    for (int i = 0; i < 10; ++i)
      server.submit_line_wait(
          R"({"op":"plan","dist":"R","sources":4,"len":2048})");
    server.submit_line_wait(R"({"op":"stats","deterministic":true})");
    for (int i = 0; i < 7; ++i)
      server.submit_line_wait(
          R"({"op":"plan","dist":"B","sources":8,"len":4096})");
    server.drain();
  }
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 18u);
  const std::string& stats = lines[10];
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos);
  // The fence makes the snapshot exact: 10 plan responses before it, none
  // of the 7 after it.
  EXPECT_NE(stats.find("\"plan\":10"), std::string::npos) << stats;
  // 10 identical requests -> 1 miss, 9 hits, whatever the worker count.
  EXPECT_NE(stats.find("\"hits\":9"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"misses\":1"), std::string::npos) << stats;
}

TEST(Server, MalformedLinesAnswerAndSessionContinues) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 2;

  std::ostringstream out;
  {
    Server server(options, out);
    server.submit_line("{\"op\":\"plan\",\"len\":0}");        // bad value
    server.submit_line("{\"op\":\"warp\"}");                   // unknown op
    server.submit_line("{\"len\":1024}");                      // missing op
    server.submit_line("{\"op\":\"plan\",\"bogus\":1}");       // unknown field
    server.submit_line("\x01garbage");                          // not JSON
    server.submit_line(
        R"({"op":"plan","machine":"paragon9000","len":1024})");  // bad machine
    server.submit_line(R"({"op":"plan","dist":"R","sources":4,"len":2048})");
    server.drain();
    EXPECT_EQ(server.counters().errors, 6u);
    EXPECT_EQ(server.counters().plan, 1u);
  }
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 7u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(test::MiniJson::validate(lines[i]), std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"ok\":false"), std::string::npos) << lines[i];
  }
  EXPECT_NE(lines[6].find("\"ok\":true"), std::string::npos);
}

TEST(Server, ExecuteRunsThePredictedBest) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 1;

  std::ostringstream out;
  {
    Server server(options, out);
    server.submit_line_wait(
        R"({"op":"execute","dist":"R","sources":4,"len":1024})");
    server.drain();
    EXPECT_EQ(server.counters().execute, 1u);
    // An execute request plans first (the signature lands in the cache).
    EXPECT_EQ(server.cache_stats().misses, 1u);
  }
  const std::string line = lines_of(out.str()).at(0);
  EXPECT_EQ(test::MiniJson::validate(line), std::string::npos);
  EXPECT_NE(line.find("\"op\":\"execute\""), std::string::npos);
  EXPECT_NE(line.find("\"algorithm\":"), std::string::npos);
  EXPECT_NE(line.find("\"time_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"total_sends\":"), std::string::npos);
}

TEST(Server, ReportSectionReconcilesWithAccessors) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = 2;

  std::ostringstream out;
  Server server(options, out);
  for (int i = 0; i < 12; ++i)
    server.submit_line_wait(
        R"({"op":"plan","dist":"R","sources":4,"len":2048})");
  server.submit_line("definitely not json");
  server.drain();

  const obs::ServeSection section = server.report_section();
  EXPECT_EQ(section.requests_plan, 12u);
  EXPECT_EQ(section.requests_error, 1u);
  EXPECT_EQ(section.workers, 2);
  ASSERT_EQ(section.cache_shards.size(), server.cache().shard_count());
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const obs::ServeSection::CacheShard& s : section.cache_shards) {
    hits += s.hits;
    misses += s.misses;
  }
  EXPECT_EQ(hits, server.cache_stats().hits);
  EXPECT_EQ(misses, server.cache_stats().misses);
  EXPECT_EQ(section.latency_count, server.latency().total);
}

}  // namespace
}  // namespace spb::serve
