// LatencyHistogram: bucket geometry, percentile ordering and clamping,
// reset, and lossless counting under concurrent recording.
#include "serve/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace spb::serve {
namespace {

TEST(LatencyHistogram, BucketEdgesAreMonotone) {
  for (int b = 1; b < LatencyHistogram::kBuckets; ++b)
    EXPECT_LT(LatencyHistogram::bucket_upper_us(b - 1),
              LatencyHistogram::bucket_upper_us(b))
        << "bucket " << b;
}

TEST(LatencyHistogram, BucketOfRespectsEdges) {
  for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
    const double upper = LatencyHistogram::bucket_upper_us(b);
    // Just under the edge stays in the bucket; the edge itself moves on.
    EXPECT_EQ(LatencyHistogram::bucket_of(upper * 0.999), b);
    EXPECT_EQ(LatencyHistogram::bucket_of(upper * 1.001), b + 1);
  }
  // The extremes saturate instead of indexing out of range.
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(-5.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e18),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  const LatencyHistogram h;
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.max_us, 0.0);
  EXPECT_EQ(s.percentile_us(50), 0.0);
  EXPECT_EQ(s.percentile_us(99), 0.0);
}

TEST(LatencyHistogram, PercentilesAreOrderedAndClamped) {
  LatencyHistogram h;
  // 90 fast requests, 9 slower, 1 slow outlier.
  for (int i = 0; i < 90; ++i) h.record(10.0);
  for (int i = 0; i < 9; ++i) h.record(500.0);
  h.record(40000.0);

  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.max_us, 40000.0);

  const double p50 = s.percentile_us(50);
  const double p95 = s.percentile_us(95);
  const double p99 = s.percentile_us(99);
  const double p100 = s.percentile_us(100);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p100);
  // The bucket upper edge overestimates by at most the sqrt(2) ratio.
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 10.0 * 1.4143);
  EXPECT_GE(p95, 500.0);
  EXPECT_LE(p95, 500.0 * 1.4143);
  // The tail percentile is clamped to the observed maximum, not the
  // (larger) edge of the bucket the outlier landed in.
  EXPECT_EQ(p100, 40000.0);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(100.0);
  h.record(200.0);
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.max_us, 0.0);
}

TEST(LatencyHistogram, NegativeZeroDoesNotWedgeTheMaximum) {
  // Regression: record() used to clamp with `< 0`, which -0.0 passes; its
  // bit pattern (sign bit set) is the largest unsigned value, so a -0.0
  // sample stored early would win every at-a-glance bit comparison and a
  // later real maximum could be lost if any comparison fell back to bits.
  // The fix normalizes every non-positive (and NaN) sample to +0.0.
  LatencyHistogram h;
  h.record(-0.0);
  EXPECT_EQ(h.snapshot().max_us, 0.0);
  EXPECT_FALSE(std::signbit(h.snapshot().max_us));
  h.record(42.0);
  EXPECT_EQ(h.snapshot().max_us, 42.0);
  h.record(-0.0);  // a late -0.0 must not replace the maximum either
  EXPECT_EQ(h.snapshot().max_us, 42.0);
}

TEST(LatencyHistogram, ConcurrentMaxIsTheTrueMax) {
  // Hammer the lock-free running maximum from many threads, with a known
  // per-thread supremum, plenty of near-max contention and -0.0 samples
  // mixed in; the reported max must equal the true max exactly.
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  constexpr double kTrueMax = 9999.0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 997 == 0) {
          h.record(-0.0);
        } else {
          // Values ramp toward the shared maximum so every thread keeps
          // contending on the CAS right up to the end; only thread 0 ever
          // records kTrueMax itself (on its last iteration).
          const double frac =
              static_cast<double>(i) / static_cast<double>(kPerThread - 1);
          const double ceiling = t == 0 ? kTrueMax : kTrueMax - 1.0;
          h.record(frac * ceiling);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.max_us, kTrueMax);
}

TEST(LatencyHistogram, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(1 + (t * kPerThread + i) % 1000));
    });
  }
  for (std::thread& t : threads) t.join();

  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t sum = 0;
  for (const std::uint64_t c : s.counts) sum += c;
  EXPECT_EQ(sum, s.total);
  EXPECT_EQ(s.max_us, 1000.0);
}

}  // namespace
}  // namespace spb::serve
