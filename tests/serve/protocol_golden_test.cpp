// Protocol conformance: a golden JSONL transcript exercising every op and
// the structured-error paths, replayed through a real Server.  The
// response stream must match byte for byte (responses are deterministic:
// the transcript ends in a "deterministic":true stats request and every
// earlier response is a pure function of its request), and every line must
// be a well-formed JSON document.
//
// Regenerate after an intentional wire-format change:
//   SPB_UPDATE_GOLDEN=1 ./test_serve --gtest_filter=ProtocolGolden.*
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.h"
#include "serve/server.h"

namespace spb::serve {
namespace {

std::string data_path(const char* name) {
  return std::string(SPB_TEST_DATA_DIR) + "/golden/" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string replay(int workers) {
  ServerOptions options;
  options.machine = "paragon4x4";
  options.workers = workers;
  std::ostringstream out;
  {
    Server server(options, out);
    for (const std::string& line : read_lines(data_path("requests.jsonl")))
      server.submit_line_wait(line);
    server.drain();
  }
  return out.str();
}

TEST(ProtocolGolden, TranscriptMatchesByteForByte) {
  const std::string got = replay(/*workers=*/2);

  const std::string golden = data_path("responses.jsonl");
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test binary.
  if (std::getenv("SPB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden);
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    out << got;
    GTEST_SKIP() << "golden updated: " << golden;
  }

  std::ifstream in(golden);
  ASSERT_TRUE(in.good()) << "missing golden " << golden
                         << " (run with SPB_UPDATE_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "wire format changed; regenerate with SPB_UPDATE_GOLDEN=1 if "
         "intentional";
}

TEST(ProtocolGolden, SameTranscriptAtEveryWorkerCount) {
  EXPECT_EQ(replay(1), replay(4));
}

TEST(ProtocolGolden, EveryResponseLineIsWellFormedJson) {
  const std::string got = replay(/*workers=*/2);
  std::istringstream is(got);
  std::string line;
  std::size_t count = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(test::MiniJson::validate(line), std::string::npos)
        << "line " << count << ": " << line;
    ++count;
  }
  EXPECT_EQ(count, read_lines(data_path("requests.jsonl")).size())
      << "exactly one response per request line";
}

TEST(ProtocolGolden, ErrorResponsesNameTheProblem) {
  const std::string got = replay(/*workers=*/2);
  const std::vector<std::string> requests =
      read_lines(data_path("requests.jsonl"));
  std::istringstream is(got);
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(is, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const bool is_error =
        responses[i].find("\"ok\":false") != std::string::npos;
    if (is_error) {
      EXPECT_NE(responses[i].find("\"error\":\""), std::string::npos)
          << "error response without a message: " << responses[i];
    }
  }
}

}  // namespace
}  // namespace spb::serve
