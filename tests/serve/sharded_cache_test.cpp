// ShardedPlanCache: shard routing, per-shard LRU and statistics, the
// multi-thread hammer (aggregate stats reconcile exactly with the per-shard
// stats), coalescing (the planner runs exactly once per in-flight group),
// and equivalence with the single-mutex PlanCache on the same trace.
#include "plan/sharded_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "machine/config.h"
#include "plan/cache.h"
#include "stop/problem.h"

namespace spb::plan {
namespace {

std::vector<Rank> sources_for(const machine::MachineConfig& m,
                              dist::Kind kind, int s,
                              std::uint64_t seed = 1) {
  return stop::make_problem(m, kind, s, 1024, seed).sources;
}

struct Trace {
  std::vector<Rank> sources;
  Bytes len;
  std::string label;
};

std::vector<Trace> mixed_trace(const machine::MachineConfig& m) {
  const std::vector<dist::Kind> kinds = {
      dist::Kind::kRow, dist::Kind::kColumn, dist::Kind::kBand,
      dist::Kind::kSquare, dist::Kind::kRandom};
  const std::vector<Bytes> lens = {512, 1024, 6144, 32768};
  std::vector<Trace> trace;
  for (const dist::Kind k : kinds)
    for (const Bytes len : lens)
      trace.push_back({sources_for(m, k, 16), len,
                       std::string(dist::kind_name(k))});
  return trace;
}

TEST(ShardedPlanCache, AggregateStatsAreExactShardSums) {
  // The satellite check: after an 8-thread mixed hammer, stats() must be
  // the exact field-wise sum of shard_stats() — no lost updates, no
  // double counting.
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  ShardedPlanCache cache(/*capacity=*/64, /*shards=*/8);
  const std::vector<Trace> trace = mixed_trace(m);

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(static_cast<std::uint64_t>(th) + 1);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t j = 0; j < trace.size(); ++j) {
          const std::size_t pick = rng.next_below(trace.size());
          cache.plan(planner, trace[pick].sources, trace[pick].len,
                     trace[pick].label);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const CacheStats total = cache.stats();
  const std::vector<CacheStats> per = cache.shard_stats();
  ASSERT_EQ(per.size(), cache.shard_count());
  CacheStats sum;
  for (const CacheStats& s : per) sum += s;
  EXPECT_EQ(total.hits, sum.hits);
  EXPECT_EQ(total.misses, sum.misses);
  EXPECT_EQ(total.evictions, sum.evictions);
  EXPECT_EQ(total.coalesced, sum.coalesced);

  // Every lookup is accounted exactly once, as a hit or a miss.
  EXPECT_EQ(total.lookups(),
            static_cast<std::uint64_t>(kThreads) * kRounds * trace.size());
  // Coalescing: the planner ran once per distinct signature (capacity is
  // ample, so nothing was evicted and re-planned).
  EXPECT_EQ(total.misses, trace.size());
  EXPECT_EQ(total.evictions, 0u);

  std::size_t size_sum = 0;
  for (std::size_t i = 0; i < cache.shard_count(); ++i)
    size_sum += cache.shard_size(i);
  EXPECT_EQ(cache.size(), size_sum);
}

TEST(ShardedPlanCache, MatchesSingleMutexCacheOnSameTrace) {
  // Results (not just stats) must be what the old single-mutex PlanCache
  // produces for the same request trace.
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  ShardedPlanCache sharded(/*capacity=*/64, /*shards=*/8);
  PlanCache single(/*capacity=*/64);
  const std::vector<Trace> trace = mixed_trace(m);

  for (const Trace& t : trace) {
    const Plan a = sharded.plan(planner, t.sources, t.len, t.label);
    const Plan b = single.plan(planner, t.sources, t.len, t.label);
    EXPECT_EQ(a.table_text(), b.table_text());
    EXPECT_EQ(a.signature, b.signature);
    EXPECT_EQ(a.planned_bytes, b.planned_bytes);
  }
  // Identical request multiset, ample capacity: identical hit/miss books.
  EXPECT_EQ(sharded.stats().hits, single.stats().hits);
  EXPECT_EQ(sharded.stats().misses, single.stats().misses);
}

TEST(ShardedPlanCache, CoalescesConcurrentMissesToOneCompute) {
  // K threads race the same signature while the first compute is held
  // open: exactly one compute() runs, everyone gets its plan, and the
  // books say 1 miss + (K-1) coalesced hits.
  const machine::MachineConfig m = machine::paragon(4, 4);
  const Planner planner(m);
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 4);
  const Signature sig = make_signature(m, srcs, 2048, "R", "");
  ShardedPlanCache cache(/*capacity=*/16, /*shards=*/4);

  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> arrived{0};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  const auto compute = [&] {
    computes.fetch_add(1);
    // Hold the in-flight window open until every thread has arrived at
    // the cache (so the losers coalesce instead of hitting the LRU).
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return planner.plan(srcs, 2048, "R", "");
  };

  std::vector<std::string> tables(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      arrived.fetch_add(1);
      const Plan p = cache.plan(sig, compute);
      tables[static_cast<std::size_t>(th)] = p.table_text();
    });
  }
  // Let the racers pile up, then open the gate.  (Threads that have not
  // yet reached the cache when the owner publishes simply hit the LRU —
  // still one compute either way.)
  while (arrived.load() < kThreads) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // the PR-5 race counted every racer here
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) - 1);
  EXPECT_EQ(stats.lookups(), static_cast<std::uint64_t>(kThreads));
  for (int th = 1; th < kThreads; ++th)
    EXPECT_EQ(tables[static_cast<std::size_t>(th)], tables[0]);
}

TEST(ShardedPlanCache, ComputeFailurePropagatesAndRetries) {
  const machine::MachineConfig m = machine::paragon(4, 4);
  const Planner planner(m);
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 4);
  const Signature sig = make_signature(m, srcs, 2048, "R", "");
  ShardedPlanCache cache(/*capacity=*/4, /*shards=*/2);

  EXPECT_THROW(
      cache.plan(sig,
                 []() -> Plan { throw CheckError("model exploded"); }),
      CheckError);
  // The failure was not cached: the next request plans again and succeeds.
  const Plan p = cache.plan(
      sig, [&] { return planner.plan(srcs, 2048, "R", ""); });
  EXPECT_FALSE(p.ranked.empty());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedPlanCache, EvictionIsPerShard) {
  // A hot shard evicts its own LRU tail only; keys on other shards stay.
  ShardedPlanCache cache(/*capacity=*/4, /*shards=*/2);
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);

  // Gather signatures until one shard owns 3 distinct keys (capacity per
  // shard is 2), planning through different length buckets.
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);
  std::vector<Signature> sigs;
  for (Bytes len = 512; sigs.size() < 8; len *= 2)
    sigs.push_back(make_signature(m, srcs, len, "R", ""));

  std::vector<std::vector<Signature>> by_shard(cache.shard_count());
  for (const Signature& s : sigs)
    by_shard[cache.shard_of(s.key())].push_back(s);
  std::size_t hot = 0;
  for (std::size_t i = 0; i < by_shard.size(); ++i)
    if (by_shard[i].size() > by_shard[hot].size()) hot = i;
  ASSERT_GE(by_shard[hot].size(), 3u) << "length buckets spread unluckily";

  for (const Signature& s : by_shard[hot])
    cache.plan(s, [&] { return planner.plan(srcs, 2048, "R", ""); });
  const std::vector<CacheStats> per = cache.shard_stats();
  EXPECT_EQ(per[hot].evictions, by_shard[hot].size() - 2);
  for (std::size_t i = 0; i < per.size(); ++i) {
    if (i != hot) {
      EXPECT_EQ(per[i].evictions, 0u);
    }
  }
  EXPECT_EQ(cache.shard_size(hot), 2u);
}

TEST(ShardedPlanCache, SingleShardKeepsGlobalLruSemantics) {
  // shards=1 is the PlanCache compatibility mode: global LRU order.
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  ShardedPlanCache cache(/*capacity=*/2, /*shards=*/1);
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);

  cache.plan(planner, srcs, 1024, "R");
  cache.plan(planner, srcs, 4096, "R");
  cache.plan(planner, srcs, 1024, "R");   // refresh
  cache.plan(planner, srcs, 16384, "R");  // evicts the 4096 bucket
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.plan(planner, srcs, 1024, "R");
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.plan(planner, srcs, 4096, "R");  // must be a miss again
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ShardedPlanCache, PeekAndClear) {
  const machine::MachineConfig m = machine::paragon(8, 8);
  const Planner planner(m);
  ShardedPlanCache cache(/*capacity=*/16, /*shards=*/4);
  const std::vector<Rank> srcs = sources_for(m, dist::Kind::kRow, 8);
  const Plan planned = cache.plan(planner, srcs, 6144, "R");

  Plan out;
  EXPECT_TRUE(cache.peek(planned.signature, out));
  EXPECT_EQ(out.table_text(), planned.table_text());
  EXPECT_EQ(cache.stats().lookups(), 1u);  // peek is not a lookup

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.peek(planned.signature, out));
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(ShardedPlanCache, RejectsZeroCapacityAndZeroShards) {
  EXPECT_THROW(ShardedPlanCache(0, 1), CheckError);
  EXPECT_THROW(ShardedPlanCache(16, 0), CheckError);
}

}  // namespace
}  // namespace spb::plan
