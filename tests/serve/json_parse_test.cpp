// serve::parse_json (the dependency-free protocol reader) and
// serve::parse_request (field validation on top of it).
#include <gtest/gtest.h>

#include <string>

#include "serve/json_value.h"
#include "serve/protocol.h"

namespace spb::serve {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  const JsonParseResult r = parse_json(text, v);
  EXPECT_TRUE(r.ok) << text << " -> " << r.error << " at " << r.error_pos;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  const JsonParseResult r = parse_json(text, v);
  EXPECT_FALSE(r.ok) << "unexpectedly parsed: " << text;
  EXPECT_LE(r.error_pos, text.size());
  return r.error;
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("true").bool_value, true);
  EXPECT_EQ(parse_ok("false").bool_value, false);
  EXPECT_EQ(parse_ok("null").kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(parse_ok("42").number_value, 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.5e2").number_value, -350.0);
  EXPECT_EQ(parse_ok("\"hi\"").string_value, "hi");
  EXPECT_EQ(parse_ok("  1024  ").number_value, 1024.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b")").string_value, "a\"b");
  EXPECT_EQ(parse_ok(R"("a\\b")").string_value, "a\\b");
  EXPECT_EQ(parse_ok(R"("a\n\t\r")").string_value, "a\n\t\r");
  EXPECT_EQ(parse_ok(R"("a\/b")").string_value, "a/b");
  // \uXXXX decodes to UTF-8: ASCII, 2-byte, 3-byte.
  EXPECT_EQ(parse_ok("\"\\u0041\"").string_value, "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").string_value, "\xc3\xa9");
  EXPECT_EQ(parse_ok("\"\\u2713\"").string_value, "\xe2\x9c\x93");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok("\"\xc3\xa9\"").string_value, "\xc3\xa9");
}

TEST(JsonParse, ObjectsKeepSourceOrder) {
  const JsonValue v = parse_ok(R"({"b":1,"a":2,"c":[3,{"d":4}]})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "b");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "c");
  ASSERT_EQ(v.members[2].second.items.size(), 2u);
  EXPECT_DOUBLE_EQ(v.members[2].second.items[0].number_value, 3.0);
  const JsonValue* d = v.members[2].second.items[1].find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->number_value, 4.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  parse_err("");
  parse_err("{");
  parse_err("[1,2");
  parse_err(R"({"a":})");
  parse_err(R"({"a" 1})");
  parse_err(R"({a:1})");
  parse_err("\"unterminated");
  parse_err(R"("bad \q escape")");
  parse_err(R"("\u12g4")");
  parse_err("1 2");          // trailing garbage
  parse_err("{}try this");   // trailing garbage after a value
  parse_err("nul");
  parse_err("+1");
  parse_err("\x01garbage");
}

TEST(JsonParse, ErrorPositionPointsAtTheFailure) {
  JsonValue v;
  const JsonParseResult r = parse_json(R"({"op":"plan",})", v);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error_pos, 13u);  // the '}' where a key was expected
}

TEST(ParseRequest, DefaultsAndFields) {
  Request req;
  EXPECT_EQ(parse_request(R"({"op":"plan"})", req), "");
  EXPECT_EQ(req.op, Op::kPlan);
  EXPECT_FALSE(req.has_id);
  EXPECT_EQ(req.machine, "");
  EXPECT_EQ(req.dist, "R");
  EXPECT_EQ(req.sources, 0);
  EXPECT_EQ(req.len, 2048u);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_FALSE(req.ranked);

  EXPECT_EQ(parse_request(
                R"({"op":"execute","id":9,"machine":"t3d64","dist":"Sq",)"
                R"("sources":8,"len":512,"seed":4,"faults":"drop=0.1",)"
                R"("ranked":true,"deterministic":true})",
                req),
            "");
  EXPECT_EQ(req.op, Op::kExecute);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 9u);
  EXPECT_EQ(req.machine, "t3d64");
  EXPECT_EQ(req.dist, "Sq");
  EXPECT_EQ(req.sources, 8);
  EXPECT_EQ(req.len, 512u);
  EXPECT_EQ(req.seed, 4u);
  EXPECT_EQ(req.faults, "drop=0.1");
  EXPECT_TRUE(req.ranked);
  EXPECT_TRUE(req.deterministic);
}

TEST(ParseRequest, RejectsBadRequests) {
  Request req;
  EXPECT_NE(parse_request("[1,2,3]", req), "");          // not an object
  EXPECT_NE(parse_request("{}", req), "");               // missing op
  EXPECT_NE(parse_request(R"({"op":"warp"})", req), "");  // unknown op
  EXPECT_NE(parse_request(R"({"op":1})", req), "");       // op not a string
  EXPECT_NE(parse_request(R"({"op":"plan","id":-1})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","id":1.5})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","len":0})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","len":"big"})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","sources":-4})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","ranked":"yes"})", req), "");
  EXPECT_NE(parse_request(R"({"op":"plan","bogus":1})", req), "");
  const std::string err = parse_request("{\"op\":\"plan\",}", req);
  EXPECT_NE(err.find("malformed JSON"), std::string::npos) << err;
}

}  // namespace
}  // namespace spb::serve
