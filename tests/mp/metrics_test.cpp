#include "mp/metrics.h"

#include <gtest/gtest.h>

namespace spb::mp {
namespace {

TEST(RankMetrics, CountsSendsAndReceives) {
  RankMetrics m;
  m.on_send(100);
  m.on_send(200);
  m.on_recv(50, /*blocked=*/true, /*wait_us=*/5.0);
  m.on_recv(50, /*blocked=*/false, 0.0);
  m.finalize();
  EXPECT_EQ(m.sends(), 2u);
  EXPECT_EQ(m.recvs(), 2u);
  EXPECT_EQ(m.send_recv_total(), 4u);
  EXPECT_EQ(m.bytes_sent(), 300u);
  EXPECT_EQ(m.bytes_received(), 100u);
  EXPECT_EQ(m.waits(), 1u);
  EXPECT_DOUBLE_EQ(m.wait_us(), 5.0);
  EXPECT_DOUBLE_EQ(m.avg_message_bytes(), 100.0);
}

TEST(RankMetrics, CongestionIsPerIterationMax) {
  RankMetrics m;
  m.on_send(10);  // iteration 0: 1 op
  m.mark_iteration();
  m.on_send(10);  // iteration 1: 3 ops — the congestion spike
  m.on_recv(10, false, 0);
  m.on_recv(10, false, 0);
  m.mark_iteration();
  m.on_recv(10, false, 0);  // iteration 2: 1 op
  m.finalize();
  EXPECT_EQ(m.congestion(), 3u);
  EXPECT_EQ(m.iterations().size(), 3u);
}

TEST(RankMetrics, TrailingEmptyIterationDropped) {
  RankMetrics m;
  m.on_send(10);
  m.mark_iteration();
  m.finalize();
  EXPECT_EQ(m.iterations().size(), 1u);
}

TEST(RankMetrics, SilentIterationsCount) {
  // A rank that stays idle in the middle iteration: the iteration exists
  // (for the av_act_proc axis) but is inactive.
  RankMetrics m;
  m.on_send(10);
  m.mark_iteration();
  m.mark_iteration();
  m.on_send(10);
  m.mark_iteration();
  m.finalize();
  ASSERT_EQ(m.iterations().size(), 3u);
  EXPECT_TRUE(m.iterations()[0].active());
  EXPECT_FALSE(m.iterations()[1].active());
  EXPECT_TRUE(m.iterations()[2].active());
}

TEST(RunMetrics, AggregatesAcrossRanks) {
  std::vector<RankMetrics> ranks(3);
  // Rank 0: heavy hitter — 4 ops in one iteration.
  ranks[0].on_send(1000);
  ranks[0].on_send(1000);
  ranks[0].on_recv(1000, true, 3.0);
  ranks[0].on_recv(1000, true, 4.0);
  ranks[0].mark_iteration();
  // Rank 1: one op per iteration, two iterations.
  ranks[1].on_send(500);
  ranks[1].mark_iteration();
  ranks[1].on_recv(500, false, 0);
  ranks[1].mark_iteration();
  // Rank 2: silent.
  for (auto& r : ranks) r.finalize();

  const RunMetrics m = RunMetrics::aggregate(ranks);
  EXPECT_EQ(m.total_sends, 3u);
  EXPECT_EQ(m.total_recvs, 3u);
  EXPECT_EQ(m.congestion, 4u);
  EXPECT_EQ(m.max_waits, 2u);
  EXPECT_EQ(m.max_send_recv, 4u);
  EXPECT_DOUBLE_EQ(m.av_msg_lgth, 1000.0);
  EXPECT_EQ(m.iterations, 2u);
  // Active rank-iterations: rank0 iter0, rank1 iter0, rank1 iter1 = 3,
  // over 2 iterations.
  EXPECT_DOUBLE_EQ(m.av_act_proc, 1.5);
}

TEST(RunMetrics, EmptyAggregation) {
  const RunMetrics m = RunMetrics::aggregate({});
  EXPECT_EQ(m.total_sends, 0u);
  EXPECT_EQ(m.iterations, 0u);
  EXPECT_DOUBLE_EQ(m.av_act_proc, 0.0);
}

}  // namespace
}  // namespace spb::mp
