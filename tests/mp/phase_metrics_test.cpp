// Phase annotation API: Comm::begin_phase/end_phase attribute traffic to
// named phases, phases nest, and the aggregated phase table partitions the
// run totals exactly when every operation happens inside a phase.
#include "mp/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "mp/metrics.h"
#include "net/topology.h"

// Rank programs are free coroutine functions, never capturing lambdas (the
// closure would die before the coroutine; see runtime_test.cpp).

namespace spb::mp {
namespace {

net::NetParams fast_net() {
  net::NetParams p;
  p.alpha_us = 1.0;
  p.per_hop_us = 0.1;
  p.bytes_per_us = 1000.0;
  return p;
}

CommParams plain_comm() {
  CommParams c;
  c.send_overhead_us = 2.0;
  c.recv_overhead_us = 3.0;
  c.header_bytes = 16;
  c.chunk_header_bytes = 4;
  return c;
}

Runtime make_runtime(int p) {
  return Runtime(std::make_shared<net::LinearArray>(p), fast_net(),
                 plain_comm(), net::RankMapping::identity(p));
}

sim::Task phased_sender(Comm& comm) {
  comm.begin_phase("gather");
  co_await comm.send(1, Payload::original(comm.rank(), 100), tags::kData);
  comm.end_phase();
  comm.begin_phase("bcast");
  co_await comm.send(1, Payload::original(comm.rank(), 200), tags::kData);
  comm.end_phase();
}

sim::Task phased_receiver(Comm& comm) {
  comm.begin_phase("gather");
  co_await comm.recv(0);
  comm.end_phase();
  comm.begin_phase("bcast");
  co_await comm.recv(0);
  comm.end_phase();
}

TEST(PhaseMetrics, PhaseTotalsPartitionRunTotals) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, phased_sender(rt.comm(0)));
  rt.spawn(1, phased_receiver(rt.comm(1)));
  const RunOutcome out = rt.run();

  ASSERT_EQ(out.phases.size(), 2u);
  EXPECT_EQ(out.phases[0].name, "gather");
  EXPECT_EQ(out.phases[1].name, "bcast");

  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  Bytes sent = 0;
  for (const auto& ph : out.phases) {
    // Both ranks entered both phases.
    EXPECT_EQ(ph.entries, 2u) << ph.name;
    EXPECT_EQ(ph.sends, 1u) << ph.name;
    EXPECT_EQ(ph.recvs, 1u) << ph.name;
    EXPECT_GT(ph.max_span_us, 0.0) << ph.name;
    EXPECT_GE(ph.total_span_us, ph.max_span_us) << ph.name;
    sends += ph.sends;
    recvs += ph.recvs;
    sent += ph.bytes_sent;
  }
  // Everything happened inside a phase, so the table partitions the run.
  EXPECT_EQ(sends, out.metrics.total_sends);
  EXPECT_EQ(recvs, out.metrics.total_recvs);
  EXPECT_EQ(sent, out.metrics.total_bytes_sent);
}

sim::Task nested_phases(Comm& comm) {
  comm.begin_phase("outer");
  co_await comm.compute(5.0);
  comm.begin_phase("inner");
  co_await comm.compute(7.0);
  comm.end_phase();
  co_await comm.compute(2.0);
  comm.end_phase();
}

TEST(PhaseMetrics, NestedPhasesAttributeToInnermost) {
  Runtime rt = make_runtime(1);
  rt.spawn(0, nested_phases(rt.comm(0)));
  const RunOutcome out = rt.run();

  ASSERT_EQ(out.phases.size(), 2u);
  const auto& outer = out.phases[0];
  const auto& inner = out.phases[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  // Compute while "inner" is open belongs to inner only; the outer phase
  // keeps the rest.
  EXPECT_DOUBLE_EQ(inner.compute_us, 7.0);
  EXPECT_DOUBLE_EQ(outer.compute_us, 7.0);  // 5 + 2
  // The outer span covers the inner one.
  EXPECT_GE(outer.max_span_us, inner.max_span_us);
}

sim::Task reentered_phase(Comm& comm) {
  comm.begin_phase("loop");
  co_await comm.compute(1.0);
  comm.end_phase();
  comm.begin_phase("loop");
  co_await comm.compute(1.0);
  comm.end_phase();
}

TEST(PhaseMetrics, ReenteringAPhaseLandsInTheSameRow) {
  Runtime rt = make_runtime(1);
  rt.spawn(0, reentered_phase(rt.comm(0)));
  const RunOutcome out = rt.run();
  ASSERT_EQ(out.phases.size(), 1u);
  EXPECT_EQ(out.phases[0].name, "loop");
  EXPECT_EQ(out.phases[0].entries, 2u);
  EXPECT_DOUBLE_EQ(out.phases[0].compute_us, 2.0);
}

sim::Task unannotated(Comm& comm) { co_await comm.compute(1.0); }

TEST(PhaseMetrics, NoAnnotationsNoTable) {
  Runtime rt = make_runtime(1);
  rt.spawn(0, unannotated(rt.comm(0)));
  const RunOutcome out = rt.run();
  EXPECT_TRUE(out.phases.empty());
}

}  // namespace
}  // namespace spb::mp
