#include "mp/payload.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace spb::mp {
namespace {

TEST(Payload, OriginalHasOneChunk) {
  const Payload p = Payload::original(7, 4096);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.chunk_count(), 1u);
  EXPECT_EQ(p.total_bytes(), 4096u);
  EXPECT_TRUE(p.has_source(7));
  EXPECT_FALSE(p.has_source(6));
}

TEST(Payload, OriginalRejectsBadArguments) {
  EXPECT_THROW(Payload::original(-1, 10), CheckError);
  EXPECT_THROW(Payload::original(3, 0), CheckError);
}

TEST(Payload, OfSortsChunks) {
  const Payload p = Payload::of({{5, 10}, {2, 20}, {9, 30}});
  ASSERT_EQ(p.chunk_count(), 3u);
  EXPECT_EQ(p.chunks()[0].source, 2);
  EXPECT_EQ(p.chunks()[1].source, 5);
  EXPECT_EQ(p.chunks()[2].source, 9);
  EXPECT_EQ(p.total_bytes(), 60u);
}

TEST(Payload, OfRejectsDuplicateSources) {
  EXPECT_THROW(Payload::of({{1, 10}, {1, 10}}), CheckError);
}

TEST(Payload, MergeDisjointSets) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{2, 10}, {6, 10}});
  a.merge(b);
  ASSERT_EQ(a.chunk_count(), 4u);
  EXPECT_EQ(a.chunks()[0].source, 0);
  EXPECT_EQ(a.chunks()[1].source, 2);
  EXPECT_EQ(a.chunks()[2].source, 4);
  EXPECT_EQ(a.chunks()[3].source, 6);
}

TEST(Payload, MergeRejectsOverlap) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{4, 10}});
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(Payload, MergeDedupCollapsesDuplicates) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{4, 10}, {5, 10}});
  a.merge_dedup(b);
  ASSERT_EQ(a.chunk_count(), 3u);
  EXPECT_EQ(a.total_bytes(), 30u);
}

TEST(Payload, MergeDedupRejectsConflictingSizes) {
  Payload a = Payload::of({{4, 10}});
  const Payload b = Payload::of({{4, 11}});
  EXPECT_THROW(a.merge_dedup(b), CheckError);
}

TEST(Payload, MergeWithEmpty) {
  Payload a = Payload::original(3, 100);
  a.merge(Payload{});
  EXPECT_EQ(a.chunk_count(), 1u);
  Payload empty;
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(Payload, EqualityIsStructural) {
  const Payload a = Payload::of({{1, 10}, {2, 20}});
  const Payload b = Payload::of({{2, 20}, {1, 10}});
  EXPECT_EQ(a, b);
  const Payload c = Payload::of({{1, 10}, {2, 21}});
  EXPECT_NE(a, c);
}

TEST(Payload, ClearEmpties) {
  Payload a = Payload::original(1, 5);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total_bytes(), 0u);
}

TEST(Payload, ToStringFormat) {
  EXPECT_EQ(Payload{}.to_string(), "{}");
  EXPECT_EQ(Payload::of({{0, 4096}, {7, 512}}).to_string(),
            "{0:4096, 7:512}");
}

}  // namespace
}  // namespace spb::mp
