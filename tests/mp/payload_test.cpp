#include "mp/payload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace spb::mp {
namespace {

TEST(Payload, OriginalHasOneChunk) {
  const Payload p = Payload::original(7, 4096);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.chunk_count(), 1u);
  EXPECT_EQ(p.total_bytes(), 4096u);
  EXPECT_TRUE(p.has_source(7));
  EXPECT_FALSE(p.has_source(6));
}

TEST(Payload, OriginalRejectsBadArguments) {
  EXPECT_THROW(Payload::original(-1, 10), CheckError);
  EXPECT_THROW(Payload::original(3, 0), CheckError);
}

TEST(Payload, OfSortsChunks) {
  const Payload p = Payload::of({{5, 10}, {2, 20}, {9, 30}});
  ASSERT_EQ(p.chunk_count(), 3u);
  EXPECT_EQ(p.chunks()[0].source, 2);
  EXPECT_EQ(p.chunks()[1].source, 5);
  EXPECT_EQ(p.chunks()[2].source, 9);
  EXPECT_EQ(p.total_bytes(), 60u);
}

TEST(Payload, OfRejectsDuplicateSources) {
  EXPECT_THROW(Payload::of({{1, 10}, {1, 10}}), CheckError);
}

TEST(Payload, MergeDisjointSets) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{2, 10}, {6, 10}});
  a.merge(b);
  ASSERT_EQ(a.chunk_count(), 4u);
  EXPECT_EQ(a.chunks()[0].source, 0);
  EXPECT_EQ(a.chunks()[1].source, 2);
  EXPECT_EQ(a.chunks()[2].source, 4);
  EXPECT_EQ(a.chunks()[3].source, 6);
}

TEST(Payload, MergeRejectsOverlap) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{4, 10}});
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(Payload, MergeDedupCollapsesDuplicates) {
  Payload a = Payload::of({{0, 10}, {4, 10}});
  const Payload b = Payload::of({{4, 10}, {5, 10}});
  a.merge_dedup(b);
  ASSERT_EQ(a.chunk_count(), 3u);
  EXPECT_EQ(a.total_bytes(), 30u);
}

TEST(Payload, MergeDedupRejectsConflictingSizes) {
  Payload a = Payload::of({{4, 10}});
  const Payload b = Payload::of({{4, 11}});
  EXPECT_THROW(a.merge_dedup(b), CheckError);
}

TEST(Payload, MergeWithEmpty) {
  Payload a = Payload::original(3, 100);
  a.merge(Payload{});
  EXPECT_EQ(a.chunk_count(), 1u);
  Payload empty;
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(Payload, EqualityIsStructural) {
  const Payload a = Payload::of({{1, 10}, {2, 20}});
  const Payload b = Payload::of({{2, 20}, {1, 10}});
  EXPECT_EQ(a, b);
  const Payload c = Payload::of({{1, 10}, {2, 21}});
  EXPECT_NE(a, c);
}

TEST(Payload, ClearEmpties) {
  Payload a = Payload::original(1, 5);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.total_bytes(), 0u);
}

TEST(Payload, ToStringFormat) {
  EXPECT_EQ(Payload{}.to_string(), "{}");
  EXPECT_EQ(Payload::of({{0, 4096}, {7, 512}}).to_string(),
            "{0:4096, 7:512}");
}

// ---- in-place merge: capacity reuse and chunk algebra ----

TEST(Payload, SmallMergesStayInline) {
  Payload a = Payload::of({{0, 10}, {2, 10}});
  a.merge(Payload::of({{1, 10}, {3, 10}}));
  EXPECT_EQ(a.chunk_count(), 4u);
  EXPECT_EQ(a.chunk_capacity(), Payload::kInlineChunks);
}

TEST(Payload, MergeWithinCapacityDoesNotReallocate) {
  std::vector<Chunk> wide;
  for (int i = 0; i < 40; ++i) wide.push_back({2 * i, 8});
  std::vector<Chunk> even(wide.begin(), wide.begin() + 32);
  Payload a = Payload::of(wide);  // settles capacity >= 40
  const Payload small = Payload::of(even);
  a = small;  // copy-assignment reuses the settled capacity
  const std::size_t cap = a.chunk_capacity();
  ASSERT_GE(cap, 33u);  // room for one more without growing
  a.merge(Payload::of({{1, 8}}));
  EXPECT_EQ(a.chunk_count(), 33u);
  EXPECT_EQ(a.chunk_capacity(), cap);
}

TEST(Payload, RepeatedAssignMergeSettlesCapacity) {
  // The benches' steady-state shape: the accumulator is reassigned and
  // re-merged every iteration; after the first, capacity must not move.
  std::vector<Chunk> even;
  std::vector<Chunk> odd;
  for (int i = 0; i < 64; ++i) {
    even.push_back({2 * i, 8});
    odd.push_back({2 * i + 1, 8});
  }
  const Payload a = Payload::of(even);
  const Payload b = Payload::of(odd);
  Payload m = a;
  m.merge(b);
  const std::size_t cap = m.chunk_capacity();
  for (int round = 0; round < 4; ++round) {
    m = a;
    m.merge(b);
    EXPECT_EQ(m.chunk_capacity(), cap);
    EXPECT_EQ(m.chunk_count(), 128u);
  }
}

TEST(Payload, MergeMatchesReferenceAlgebraAcrossShapes) {
  // In-place fast paths (append, prepend, in-capacity interleave, growth)
  // must all produce the same sorted union a std::merge would.
  const auto reference = [](std::vector<Chunk> x, std::vector<Chunk> y) {
    for (const Chunk& c : y) x.push_back(c);
    std::sort(x.begin(), x.end(),
              [](const Chunk& l, const Chunk& r) { return l.source < r.source; });
    return x;
  };
  struct Case {
    std::vector<Chunk> a;
    std::vector<Chunk> b;
  };
  std::vector<Case> cases;
  cases.push_back({{{0, 1}, {1, 2}, {2, 3}}, {{10, 4}, {11, 5}}});  // append
  cases.push_back({{{10, 4}, {11, 5}}, {{0, 1}, {1, 2}}});          // prepend
  cases.push_back({{{0, 1}, {4, 2}, {8, 3}}, {{2, 4}, {6, 5}}});    // weave
  {
    Case big;  // growth path: n + m far beyond inline capacity
    for (int i = 0; i < 40; ++i) big.a.push_back({3 * i, 8});
    for (int i = 0; i < 40; ++i) big.b.push_back({3 * i + 1, 8});
    cases.push_back(big);
  }
  for (const Case& c : cases) {
    Payload p = Payload::of(c.a);
    p.merge(Payload::of(c.b));
    const std::vector<Chunk> want = reference(c.a, c.b);
    ASSERT_EQ(p.chunk_count(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(p.chunks()[i], want[i]);
    Bytes bytes = 0;
    for (const Chunk& ch : want) bytes += ch.bytes;
    EXPECT_EQ(p.total_bytes(), bytes);
  }
}

TEST(Payload, FailedMergeLeavesPayloadUnchanged) {
  // The duplicate is discovered only after the backward merge has already
  // overwritten part of the original prefix — the rollback must restore
  // it exactly (shape: last elements merge first, dup found late).
  const Payload orig = Payload::of({{1, 10}, {5, 10}, {6, 10}});
  Payload a = orig;
  EXPECT_THROW(a.merge(Payload::of({{1, 10}, {7, 10}})), CheckError);
  EXPECT_EQ(a, orig);

  // Dup found immediately (equal max sources).
  Payload b = orig;
  EXPECT_THROW(b.merge(Payload::of({{6, 10}})), CheckError);
  EXPECT_EQ(b, orig);

  // Growth path (result would exceed capacity) must also be atomic.
  std::vector<Chunk> many;
  for (int i = 0; i < 30; ++i) many.push_back({2 * i, 8});
  const Payload wide = Payload::of(many);
  Payload c = wide;
  std::vector<Chunk> clash;
  for (int i = 0; i < 30; ++i) clash.push_back({2 * i + 1, 8});
  clash[29] = {58, 8};  // duplicates a source in `wide`
  EXPECT_THROW(c.merge(Payload::of(clash)), CheckError);
  EXPECT_EQ(c, wide);
}

}  // namespace
}  // namespace spb::mp
