#include "mp/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/topology.h"

// NOTE: rank programs are written as free coroutine functions, never as
// capturing lambdas — a lambda's closure dies at the end of the spawning
// full-expression while the coroutine lives on (the captures would
// dangle).  Reference parameters are fine: the referents are locals of the
// test body, which outlives run().

namespace spb::mp {
namespace {

net::NetParams fast_net() {
  net::NetParams p;
  p.alpha_us = 1.0;
  p.per_hop_us = 0.1;
  p.bytes_per_us = 1000.0;
  return p;
}

CommParams plain_comm() {
  CommParams c;
  c.send_overhead_us = 2.0;
  c.recv_overhead_us = 3.0;
  c.combine_fixed_us = 1.0;
  c.combine_per_byte_us = 0.001;
  c.header_bytes = 16;
  c.chunk_header_bytes = 4;
  c.mpi_extra_us = 0.0;
  return c;
}

Runtime make_runtime(int p, CommParams cp = plain_comm()) {
  return Runtime(std::make_shared<net::LinearArray>(p), fast_net(), cp,
                 net::RankMapping::identity(p));
}

sim::Task idle_program(Comm&) { co_return; }

sim::Task send_one(Comm& comm, Rank dst, Bytes bytes, double pre_delay,
                   int tag) {
  if (pre_delay > 0) co_await comm.compute(pre_delay);
  Payload p = Payload::original(comm.rank(), bytes);
  co_await comm.send(dst, std::move(p), tag);
}

sim::Task recv_one(Comm& comm, Rank src, Payload& got, SimTime& done_at,
                   double pre_delay) {
  if (pre_delay > 0) co_await comm.compute(pre_delay);
  Message m = co_await comm.recv(src);
  got = std::move(m.payload);
  done_at = comm.now();
}

TEST(Runtime, PingPongDeliversPayload) {
  Runtime rt = make_runtime(2);
  Payload got;
  SimTime recv_done = -1;
  rt.spawn(0, send_one(rt.comm(0), 1, 1000, 0, tags::kData));
  rt.spawn(1, recv_one(rt.comm(1), 0, got, recv_done, 0));
  const RunOutcome out = rt.run();
  EXPECT_EQ(got, Payload::original(0, 1000));
  // wire = 16 + 4 + 1000 = 1020 bytes; injection ready at 2 (send
  // overhead); arrive = 2 + 1 (alpha) + 0.1 (hop) + 1.02 (serialize);
  // plus 3 of receive overhead.
  EXPECT_NEAR(recv_done, 2 + 1 + 0.1 + 1.02 + 3, 1e-9);
  EXPECT_NEAR(out.makespan_us, recv_done, 1e-9);
  EXPECT_EQ(out.metrics.total_sends, 1u);
  EXPECT_EQ(out.metrics.total_recvs, 1u);
}

sim::Task send_then_stamp(Comm& comm, Rank dst, Bytes bytes,
                          SimTime& resumed_at) {
  Payload p = Payload::original(comm.rank(), bytes);
  co_await comm.send(dst, std::move(p));
  resumed_at = comm.now();
}

sim::Task recv_discard(Comm& comm, Rank src) { (void)co_await comm.recv(src); }

TEST(Runtime, SenderResumesAtInjectDone) {
  Runtime rt = make_runtime(2);
  SimTime sender_resumed = -1;
  rt.spawn(0, send_then_stamp(rt.comm(0), 1, 1000, sender_resumed));
  rt.spawn(1, recv_discard(rt.comm(1), 0));
  rt.run();
  // The sender is released when injection completes (2 + 1.02), well
  // before the receiver finishes.
  EXPECT_NEAR(sender_resumed, 2 + 1.02, 1e-9);
}

sim::Task exchange_program(Comm& comm, Rank peer, int& ok_count) {
  co_await comm.send(peer, Payload::original(comm.rank(), 64));
  Message m = co_await comm.recv(peer);
  if (m.payload.has_source(peer)) ++ok_count;
}

TEST(Runtime, EagerSendsDontNeedPostedReceives) {
  // Both ranks send first, then receive: the classic pairwise exchange.
  // Eager buffering makes it deadlock-free by construction.
  Runtime rt = make_runtime(2);
  int exchanged = 0;
  rt.spawn(0, exchange_program(rt.comm(0), 1, exchanged));
  rt.spawn(1, exchange_program(rt.comm(1), 0, exchanged));
  rt.run();
  EXPECT_EQ(exchanged, 2);
}

sim::Task send_big_then_small(Comm& comm, Rank dst) {
  co_await comm.send(dst, Payload::original(comm.rank(), 50000));
  Payload tiny = Payload::of({{7, 1}});
  co_await comm.send(dst, std::move(tiny));
}

sim::Task recv_two_sizes(Comm& comm, Rank src, std::vector<Bytes>& sizes) {
  Message a = co_await comm.recv(src);
  Message b = co_await comm.recv(src);
  sizes.push_back(a.payload.total_bytes());
  sizes.push_back(b.payload.total_bytes());
}

TEST(Runtime, FifoPerSenderReceiverPair) {
  Runtime rt = make_runtime(2);
  std::vector<Bytes> sizes;
  rt.spawn(0, send_big_then_small(rt.comm(0), 1));
  rt.spawn(1, recv_two_sizes(rt.comm(1), 0, sizes));
  rt.run();
  EXPECT_EQ(sizes, (std::vector<Bytes>{50000, 1}));
}

TEST(Runtime, RecvBlockingIsMeasured) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, send_one(rt.comm(0), 1, 10, /*pre_delay=*/100.0, tags::kData));
  rt.spawn(1, recv_discard(rt.comm(1), 0));
  const RunOutcome out = rt.run();
  EXPECT_EQ(out.metrics.max_waits, 1u);
}

sim::Task delayed_recv(Comm& comm, Rank src, double delay) {
  co_await comm.compute(delay);
  (void)co_await comm.recv(src);
}

TEST(Runtime, BufferedRecvDoesNotCountAsWait) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, send_one(rt.comm(0), 1, 10, 0, tags::kData));
  rt.spawn(1, delayed_recv(rt.comm(1), 0, 500.0));
  const RunOutcome out = rt.run();
  EXPECT_EQ(out.metrics.max_waits, 0u);
}

sim::Task recv_two_any(Comm& comm, std::vector<Rank>& order) {
  Message a = co_await comm.recv(kAnySource, tags::kData);
  Message b = co_await comm.recv(kAnySource, tags::kData);
  order.push_back(a.src);
  order.push_back(b.src);
}

TEST(Runtime, AnySourceReceivesInArrivalOrder) {
  Runtime rt = make_runtime(3);
  std::vector<Rank> order;
  rt.spawn(1, send_one(rt.comm(1), 0, 10, /*pre_delay=*/50.0, tags::kData));
  rt.spawn(2, send_one(rt.comm(2), 0, 10, 0, tags::kData));
  rt.spawn(0, recv_two_any(rt.comm(0), order));
  rt.run();
  EXPECT_EQ(order, (std::vector<Rank>{2, 1}));
}

sim::Task send_two_tags(Comm& comm, Rank dst) {
  co_await comm.send(dst, Payload::original(comm.rank(), 10),
                     tags::kExchange);
  co_await comm.send(dst, Payload::original(comm.rank(), 20), tags::kData);
}

sim::Task recv_tagged(Comm& comm, std::vector<int>& tags_seen) {
  // Posted for kData first: must not grab the earlier kExchange message.
  Message d = co_await comm.recv(kAnySource, tags::kData);
  Message e = co_await comm.recv(kAnySource, tags::kExchange);
  tags_seen.push_back(d.tag);
  tags_seen.push_back(e.tag);
}

TEST(Runtime, TagsKeepPhasesApart) {
  Runtime rt = make_runtime(2);
  std::vector<int> tags_seen;
  rt.spawn(0, send_two_tags(rt.comm(0), 1));
  rt.spawn(1, recv_tagged(rt.comm(1), tags_seen));
  rt.run();
  EXPECT_EQ(tags_seen, (std::vector<int>{tags::kData, tags::kExchange}));
}

sim::Task merge_and_check(Comm& comm, Rank src, SimTime& merged_at) {
  Message m = co_await comm.recv(src);
  const SimTime before = comm.now();
  Payload mine = Payload::original(comm.rank(), 500);
  co_await comm.merge(mine, std::move(m.payload));
  // combine_fixed 1.0 + 0.001 * 1000 = 2.0.
  EXPECT_NEAR(comm.now() - before, 2.0, 1e-9);
  EXPECT_EQ(mine.chunk_count(), 2u);
  merged_at = comm.now();
}

TEST(Runtime, MergeChargesCombineCost) {
  Runtime rt = make_runtime(2);
  SimTime merged_at = -1;
  rt.spawn(0, send_one(rt.comm(0), 1, 1000, 0, tags::kData));
  rt.spawn(1, merge_and_check(rt.comm(1), 0, merged_at));
  rt.run();
  EXPECT_GT(merged_at, 0);
}

sim::Task send_sized_program(Comm& comm, Rank dst, Bytes wire) {
  co_await comm.send_sized(dst, Payload{}, wire);
}

sim::Task recv_wire(Comm& comm, Rank src, Bytes& wire) {
  Message m = co_await comm.recv(src);
  wire = m.wire_bytes;
  EXPECT_TRUE(m.payload.empty());
}

TEST(Runtime, SendSizedUsesExplicitWire) {
  Runtime rt = make_runtime(2);
  Bytes wire = 0;
  rt.spawn(0, send_sized_program(rt.comm(0), 1, 4096));
  rt.spawn(1, recv_wire(rt.comm(1), 0, wire));
  rt.run();
  EXPECT_EQ(wire, 4096u);
}

double ping_makespan(double mpi_extra) {
  CommParams c = plain_comm();
  c.mpi_extra_us = mpi_extra;
  Runtime rt(std::make_shared<net::LinearArray>(2), fast_net(), c,
             net::RankMapping::identity(2));
  rt.spawn(0, send_one(rt.comm(0), 1, 100, 0, tags::kData));
  rt.spawn(1, recv_discard(rt.comm(1), 0));
  return rt.run().makespan_us;
}

TEST(Runtime, MpiExtraSlowsEveryMessage) {
  // One send + one recv: 2 * extra more end-to-end.
  EXPECT_NEAR(ping_makespan(10.0) - ping_makespan(0.0), 20.0, 1e-9);
}

TEST(Runtime, DeadlockDetectedWithDiagnostics) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, recv_discard(rt.comm(0), 1));  // never satisfied
  rt.spawn(1, idle_program(rt.comm(1)));
  try {
    rt.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("recv(1)"), std::string::npos) << what;
  }
}

sim::Task throwing_program(Comm& comm) {
  co_await comm.compute(1.0);
  throw std::runtime_error("program bug");
}

TEST(Runtime, ProgramExceptionsSurface) {
  Runtime rt = make_runtime(1);
  rt.spawn(0, throwing_program(rt.comm(0)));
  EXPECT_THROW(rt.run(), std::runtime_error);
}

TEST(Runtime, SpawnValidation) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, idle_program(rt.comm(0)));
  EXPECT_THROW(rt.spawn(0, idle_program(rt.comm(0))), CheckError);
  EXPECT_THROW(rt.spawn(5, idle_program(rt.comm(0))), CheckError);
  EXPECT_THROW(rt.run(), CheckError);  // rank 1 has no program
}

TEST(Runtime, SelfSendRejected) {
  Runtime rt = make_runtime(2);
  EXPECT_THROW(rt.comm(0).send(0, Payload::original(0, 1)), CheckError);
  EXPECT_THROW(rt.comm(0).recv(0), CheckError);
}

sim::Task ring_program(Comm& comm) {
  const Rank me = comm.rank();
  const int p = comm.size();
  Payload mine = Payload::original(me, 256 * static_cast<Bytes>(me + 1));
  co_await comm.send((me + 1) % p, std::move(mine));
  Message m = co_await comm.recv((me + p - 1) % p);
  co_await comm.compute(static_cast<double>(m.wire_bytes) * 0.01);
}

TEST(Runtime, DeterministicAcrossIdenticalRuns) {
  const auto run_once = []() {
    Runtime rt = make_runtime(4);
    for (Rank r = 0; r < 4; ++r) rt.spawn(r, ring_program(rt.comm(r)));
    const RunOutcome out = rt.run();
    return std::pair{out.makespan_us, out.events};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // bit-identical, not just close
  EXPECT_EQ(a.second, b.second);
}

sim::Task all_to_all_program(Comm& comm) {
  const Rank me = comm.rank();
  for (Rank peer = 0; peer < comm.size(); ++peer) {
    if (peer == me) continue;
    co_await comm.send(peer, Payload::original(me, 128));
  }
  for (int k = 0; k < comm.size() - 1; ++k)
    (void)co_await comm.recv(kAnySource, tags::kData);
}

TEST(Runtime, SendsEqualReceivesInMetrics) {
  Runtime rt = make_runtime(4);
  for (Rank r = 0; r < 4; ++r) rt.spawn(r, all_to_all_program(rt.comm(r)));
  const RunOutcome out = rt.run();
  EXPECT_EQ(out.metrics.total_sends, 12u);
  EXPECT_EQ(out.metrics.total_recvs, 12u);
  EXPECT_EQ(out.network.transfers, 12u);
}

TEST(Runtime, RunIsOneShot) {
  Runtime rt = make_runtime(1);
  rt.spawn(0, idle_program(rt.comm(0)));
  rt.run();
  EXPECT_THROW(rt.run(), CheckError);
}

}  // namespace
}  // namespace spb::mp
