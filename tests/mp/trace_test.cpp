#include "mp/trace.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "mp/runtime.h"
#include "net/topology.h"

namespace spb::mp {
namespace {

Runtime traced_runtime(int p) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 100.0;
  CommParams cp;
  cp.send_overhead_us = 2.0;
  cp.recv_overhead_us = 3.0;
  Runtime rt(std::make_shared<net::LinearArray>(p), np, cp,
             net::RankMapping::identity(p));
  rt.enable_trace();
  return rt;
}

sim::Task sender(Comm& comm, Rank dst) {
  co_await comm.compute(10.0);
  co_await comm.send(dst, Payload::original(comm.rank(), 500));
}

sim::Task receiver(Comm& comm, Rank src) {
  (void)co_await comm.recv(src);
}

TEST(Trace, RecordsSendRecvCompute) {
  Runtime rt = traced_runtime(2);
  rt.spawn(0, sender(rt.comm(0), 1));
  rt.spawn(1, receiver(rt.comm(1), 0));
  rt.run();

  const Trace& trace = rt.trace();
  ASSERT_EQ(trace.size(), 3u);

  const auto r0 = trace.for_rank(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].kind, TraceEvent::Kind::kCompute);
  EXPECT_DOUBLE_EQ(r0[0].begin_us, 0.0);
  EXPECT_DOUBLE_EQ(r0[0].end_us, 10.0);
  EXPECT_EQ(r0[1].kind, TraceEvent::Kind::kSend);
  EXPECT_EQ(r0[1].peer, 1);
  EXPECT_EQ(r0[1].wire_bytes, 500u + 32u + 8u);
  // Issue at t=10; injection window = overhead 2 + serialize 5.4.
  EXPECT_DOUBLE_EQ(r0[1].begin_us, 10.0);
  EXPECT_DOUBLE_EQ(r0[1].end_us, 10.0 + 2.0 + 5.4);
  EXPECT_GT(r0[1].arrive_us, r0[1].end_us);

  const auto r1 = trace.for_rank(1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].kind, TraceEvent::Kind::kRecv);
  EXPECT_EQ(r1[0].peer, 0);
  EXPECT_TRUE(r1[0].blocked);
  EXPECT_DOUBLE_EQ(r1[0].begin_us, 0.0);
  // Handed over recv_overhead after the arrival.
  EXPECT_DOUBLE_EQ(r1[0].end_us, r0[1].arrive_us + 3.0);
  EXPECT_DOUBLE_EQ(trace.horizon_us(), r1[0].end_us);
}

TEST(Trace, DisabledByDefault) {
  net::NetParams np;
  CommParams cp;
  Runtime rt(std::make_shared<net::LinearArray>(2), np, cp,
             net::RankMapping::identity(2));
  rt.spawn(0, sender(rt.comm(0), 1));
  rt.spawn(1, receiver(rt.comm(1), 0));
  rt.run();
  EXPECT_TRUE(rt.trace().empty());
}

TEST(Trace, TimelineMarksPhases) {
  Runtime rt = traced_runtime(2);
  rt.spawn(0, sender(rt.comm(0), 1));
  rt.spawn(1, receiver(rt.comm(1), 0));
  rt.run();
  const std::string chart = rt.trace().render_timeline(2, 40);
  // Two rows, each framed by pipes.
  EXPECT_NE(chart.find("rank   0 |"), std::string::npos) << chart;
  EXPECT_NE(chart.find("rank   1 |"), std::string::npos) << chart;
  EXPECT_NE(chart.find('c'), std::string::npos) << chart;
  EXPECT_NE(chart.find('S'), std::string::npos) << chart;
  EXPECT_NE(chart.find('w'), std::string::npos) << chart;
  EXPECT_NE(chart.find('r'), std::string::npos) << chart;
}

TEST(Trace, TimelineFaultMarksWinTheirBucket) {
  // A drop ('x') or retransmit ('R') spans far less time than the send
  // around it; at coarse columns both land in a send's bucket and must
  // survive regardless of recording order.
  Trace t;
  TraceEvent drop;
  drop.kind = TraceEvent::Kind::kDrop;
  drop.rank = 0;
  drop.begin_us = 40.0;
  drop.end_us = 42.0;
  t.record(drop);
  TraceEvent send;
  send.kind = TraceEvent::Kind::kSend;
  send.rank = 0;
  send.begin_us = 0.0;
  send.end_us = 100.0;
  t.record(send);  // recorded after the drop — used to repaint its bucket
  TraceEvent re;
  re.kind = TraceEvent::Kind::kRetransmit;
  re.rank = 0;
  re.begin_us = 80.0;
  re.end_us = 81.0;
  t.record(re);

  const std::string chart = t.render_timeline(1, 10);
  EXPECT_NE(chart.find('x'), std::string::npos) << chart;
  EXPECT_NE(chart.find('R'), std::string::npos) << chart;
  EXPECT_NE(chart.find('S'), std::string::npos) << chart;
  // When both fault marks share one bucket the rarer drop wins: with a
  // single column the whole run collapses into one cell and 'x' outranks
  // 'R' whichever lands first.
  Trace t2;
  t2.record(re);
  t2.record(drop);
  const std::string chart2 = t2.render_timeline(1, 1);
  EXPECT_NE(chart2.find('x'), std::string::npos) << chart2;
}

TEST(Trace, RenderRejectsBadGrid) {
  Trace t;
  EXPECT_THROW(t.render_timeline(0, 10), CheckError);
  EXPECT_THROW(t.render_timeline(2, 0), CheckError);
}

}  // namespace
}  // namespace spb::mp
