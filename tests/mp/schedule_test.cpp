#include "mp/schedule.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "mp/runtime.h"
#include "net/topology.h"

// Schedule recording on a live Runtime: ops, steps, match edges and the
// from_ops() rebuild used by the mutation harness.

namespace spb::mp {
namespace {

Runtime make_runtime(int p) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 1000.0;
  CommParams cp;
  cp.send_overhead_us = 2.0;
  cp.recv_overhead_us = 3.0;
  cp.header_bytes = 16;
  cp.chunk_header_bytes = 4;
  return Runtime(std::make_shared<net::LinearArray>(p), np, cp,
                 net::RankMapping::identity(p));
}

sim::Task send_program(Comm& comm, Rank dst, Bytes bytes, int tag) {
  co_await comm.send(dst, Payload::original(comm.rank(), bytes), tag);
}

sim::Task recv_program(Comm& comm, Rank src, int tag) {
  (void)co_await comm.recv(src, tag);
}

TEST(ScheduleRecording, PingPongRecordsMatchedPair) {
  Runtime rt = make_runtime(2);
  rt.enable_schedule_recording();
  ASSERT_TRUE(rt.schedule_recording());
  rt.spawn(0, send_program(rt.comm(0), 1, 1000, tags::kData));
  rt.spawn(1, recv_program(rt.comm(1), 0, tags::kData));
  rt.run();

  const Schedule& sched = rt.schedule();
  ASSERT_EQ(sched.size(), 2u);
  const ScheduleOp& send = sched.op(sched.ops_of_rank(0).front());
  const ScheduleOp& recv = sched.op(sched.ops_of_rank(1).front());
  EXPECT_TRUE(send.is_send());
  EXPECT_EQ(send.peer, 1);
  EXPECT_EQ(send.tag, tags::kData);
  EXPECT_EQ(send.wire_bytes, 1020u);  // 16 header + 4 chunk + 1000
  EXPECT_EQ(send.chunk_sources, std::vector<Rank>{0});
  EXPECT_EQ(send.payload_bytes, 1000u);
  EXPECT_TRUE(recv.is_recv());
  EXPECT_TRUE(recv.completed);
  EXPECT_EQ(recv.match, send.id);
  EXPECT_EQ(send.match, recv.id);
  EXPECT_EQ(recv.wire_bytes, send.wire_bytes);
  EXPECT_EQ(recv.chunk_sources, std::vector<Rank>{0});
}

sim::Task recv_twice(Comm& comm, Rank src) {
  (void)co_await comm.recv(src);
  (void)co_await comm.recv(src);
}

sim::Task send_twice(Comm& comm, Rank dst) {
  co_await comm.send(dst, Payload::original(comm.rank(), 10));
  co_await comm.send(dst, Payload::original(comm.rank(), 20));
}

TEST(ScheduleRecording, PerRankStepsAreSequential) {
  Runtime rt = make_runtime(2);
  rt.enable_schedule_recording();
  rt.spawn(0, send_twice(rt.comm(0), 1));
  rt.spawn(1, recv_twice(rt.comm(1), 0));
  rt.run();
  const Schedule& sched = rt.schedule();
  ASSERT_EQ(sched.ops_of_rank(0).size(), 2u);
  ASSERT_EQ(sched.ops_of_rank(1).size(), 2u);
  EXPECT_EQ(sched.op(sched.ops_of_rank(0)[0]).step, 0);
  EXPECT_EQ(sched.op(sched.ops_of_rank(0)[1]).step, 1);
  // FIFO per pair: first recv consumed the first (10-byte) send.
  const ScheduleOp& first_recv = sched.op(sched.ops_of_rank(1)[0]);
  EXPECT_EQ(first_recv.match, sched.ops_of_rank(0)[0]);
}

TEST(ScheduleRecording, DisabledByDefaultAndOneShot) {
  Runtime rt = make_runtime(2);
  EXPECT_FALSE(rt.schedule_recording());
  rt.spawn(0, send_program(rt.comm(0), 1, 10, tags::kData));
  rt.spawn(1, recv_program(rt.comm(1), 0, tags::kData));
  rt.run();
  EXPECT_TRUE(rt.schedule().empty());
  // Too late to turn on after the run.
  EXPECT_THROW(rt.enable_schedule_recording(), CheckError);
}

TEST(ScheduleRecording, FromOpsRemapsMatchEdges) {
  Runtime rt = make_runtime(2);
  rt.enable_schedule_recording();
  rt.spawn(0, send_twice(rt.comm(0), 1));
  rt.spawn(1, recv_twice(rt.comm(1), 0));
  rt.run();

  // Drop the first send; its recv must lose completion, the second pair's
  // match edge must survive the renumbering.
  std::vector<ScheduleOp> ops = rt.schedule().ops();
  const int dropped = rt.schedule().ops_of_rank(0)[0];
  std::vector<ScheduleOp> kept;
  for (const ScheduleOp& op : ops)
    if (op.id != dropped) kept.push_back(op);
  const Schedule rebuilt = Schedule::from_ops(2, std::move(kept));
  ASSERT_EQ(rebuilt.size(), 3u);
  int completed = 0;
  int uncompleted = 0;
  for (const ScheduleOp& op : rebuilt.ops()) {
    if (!op.is_recv()) continue;
    if (op.completed) {
      ++completed;
      const ScheduleOp& partner = rebuilt.op(op.match);
      EXPECT_TRUE(partner.is_send());
      EXPECT_EQ(partner.match, op.id);
    } else {
      ++uncompleted;
      EXPECT_EQ(op.match, -1);
    }
  }
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(uncompleted, 1);
}

}  // namespace
}  // namespace spb::mp
