// Seeded fuzz of Payload::merge / merge_dedup against a naive reference
// model (std::map<source, bytes>).  The production code merges in place
// over SmallVec storage with a partial-merge rollback path; the reference
// is too slow for the simulator but obviously correct, so any divergence
// is a Payload bug.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mp/payload.h"

namespace spb::mp {
namespace {

using Model = std::map<Rank, Bytes>;

Payload to_payload(const Model& m) {
  std::vector<Chunk> chunks;
  for (const auto& [source, bytes] : m) chunks.push_back({source, bytes});
  return Payload::of(std::move(chunks));
}

void expect_matches(const Payload& p, const Model& m) {
  ASSERT_EQ(p.chunk_count(), m.size());
  Bytes total = 0;
  std::size_t i = 0;
  for (const auto& [source, bytes] : m) {
    EXPECT_EQ(p.chunks()[i].source, source);
    EXPECT_EQ(p.chunks()[i].bytes, bytes);
    EXPECT_TRUE(p.has_source(source));
    total += bytes;
    ++i;
  }
  EXPECT_EQ(p.total_bytes(), total);
}

/// A random chunk set over a small source universe (so overlaps between
/// two draws are common) with occasionally-colliding sizes.
Model draw_model(Rng& rng, int max_chunks) {
  Model m;
  const int n = static_cast<int>(rng.next_in(0, max_chunks));
  for (int i = 0; i < n; ++i) {
    const Rank source = static_cast<Rank>(rng.next_in(0, 19));
    const Bytes bytes = 64u << rng.next_below(4);  // 64..512
    m[source] = bytes;
  }
  return m;
}

TEST(PayloadFuzz, MergeMatchesReferenceModel) {
  Rng rng(0x5eedf00dULL);
  int disjoint_merges = 0;
  int rejected_merges = 0;
  for (int round = 0; round < 2000; ++round) {
    const Model ma = draw_model(rng, 8);
    const Model mb = draw_model(rng, 8);
    Payload a = to_payload(ma);
    const Payload b = to_payload(mb);

    bool overlap = false;
    for (const auto& [source, bytes] : mb) overlap |= ma.contains(source);

    if (!overlap) {
      Model merged = ma;
      merged.insert(mb.begin(), mb.end());
      a.merge(b);
      expect_matches(a, merged);
      ++disjoint_merges;
    } else {
      // Overlap rejection: merge must throw and — rollback atomicity —
      // leave the destination exactly as it was, even when the overlap
      // sits after chunks that were already spliced in.
      EXPECT_THROW(a.merge(b), CheckError);
      expect_matches(a, ma);
      ++rejected_merges;
    }
  }
  // The universe is small enough that both branches run thousands of
  // times; a generator change that starves one would weaken the test.
  EXPECT_GT(disjoint_merges, 200);
  EXPECT_GT(rejected_merges, 200);
}

TEST(PayloadFuzz, MergeDedupMatchesReferenceUnion) {
  Rng rng(0xba5eba11ULL);
  for (int round = 0; round < 2000; ++round) {
    const Model ma = draw_model(rng, 8);
    Model mb = draw_model(rng, 8);
    // merge_dedup requires duplicate sizes to agree; align them.
    for (auto& [source, bytes] : mb) {
      const auto it = ma.find(source);
      if (it != ma.end()) bytes = it->second;
    }
    Payload a = to_payload(ma);
    a.merge_dedup(to_payload(mb));
    Model merged = ma;
    merged.insert(mb.begin(), mb.end());  // keeps ma's copy on collision
    expect_matches(a, merged);
  }
}

TEST(PayloadFuzz, RollbackSurvivesRepeatedFailures) {
  // Hammer one destination with failing merges interleaved with good ones:
  // every failure must leave it byte-identical, every success must land,
  // and capacity reuse must never corrupt the chunk order.
  Rng rng(0xdecafbadULL);
  Model model;
  Payload p;
  for (int round = 0; round < 3000; ++round) {
    const Model add = draw_model(rng, 4);
    bool overlap = false;
    for (const auto& [source, bytes] : add) overlap |= model.contains(source);
    if (overlap) {
      EXPECT_THROW(p.merge(to_payload(add)), CheckError);
    } else {
      p.merge(to_payload(add));
      model.insert(add.begin(), add.end());
    }
    expect_matches(p, model);
    if (model.size() > 12 || rng.next_double() < 0.05) {
      p.clear();
      model.clear();
    }
  }
}

}  // namespace
}  // namespace spb::mp
