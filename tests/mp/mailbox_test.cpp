#include "mp/mailbox.h"

#include <gtest/gtest.h>

namespace spb::mp {
namespace {

Message make_msg(Rank src, int tag, Bytes bytes) {
  Message m;
  m.src = src;
  m.dst = 0;
  m.tag = tag;
  m.payload = Payload::original(src, bytes);
  m.wire_bytes = bytes;
  return m;
}

TEST(Mailbox, TakeBySourceInArrivalOrder) {
  Mailbox box;
  box.deliver(make_msg(3, 0, 10));
  box.deliver(make_msg(5, 0, 20));
  box.deliver(make_msg(3, 0, 30));
  Message out;
  ASSERT_TRUE(box.try_take(3, kAnyTag, out));
  EXPECT_EQ(out.wire_bytes, 10u);  // earliest from 3
  ASSERT_TRUE(box.try_take(3, kAnyTag, out));
  EXPECT_EQ(out.wire_bytes, 30u);
  EXPECT_FALSE(box.try_take(3, kAnyTag, out));
  ASSERT_TRUE(box.try_take(5, kAnyTag, out));
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, AnySourceTakesEarliestOverall) {
  Mailbox box;
  box.deliver(make_msg(9, 0, 1));
  box.deliver(make_msg(2, 0, 2));
  Message out;
  ASSERT_TRUE(box.try_take(kAnySource, kAnyTag, out));
  EXPECT_EQ(out.src, 9);
  ASSERT_TRUE(box.try_take(kAnySource, kAnyTag, out));
  EXPECT_EQ(out.src, 2);
}

TEST(Mailbox, TagFiltering) {
  Mailbox box;
  box.deliver(make_msg(1, tags::kExchange, 11));
  box.deliver(make_msg(1, tags::kData, 22));
  Message out;
  // A data-tag receive must skip the exchange message even though it
  // arrived first.
  ASSERT_TRUE(box.try_take(kAnySource, tags::kData, out));
  EXPECT_EQ(out.wire_bytes, 22u);
  EXPECT_FALSE(box.try_take(kAnySource, tags::kData, out));
  ASSERT_TRUE(box.try_take(1, tags::kExchange, out));
  EXPECT_EQ(out.wire_bytes, 11u);
}

TEST(Mailbox, MissLeavesBufferIntact) {
  Mailbox box;
  box.deliver(make_msg(4, 0, 7));
  Message out;
  EXPECT_FALSE(box.try_take(5, kAnyTag, out));
  EXPECT_EQ(box.size(), 1u);
  ASSERT_TRUE(box.try_take(4, kAnyTag, out));
}

}  // namespace
}  // namespace spb::mp
