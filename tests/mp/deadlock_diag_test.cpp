#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mp/runtime.h"
#include "net/topology.h"

// Deadlock diagnostics: when the simulation drains with rank programs
// still suspended, the DeadlockError must name each stuck rank, the
// receive filter it is parked on (source and, when pinned, tag), and
// whether non-matching messages were sitting in its mailbox — enough to
// spot a wrong-tag or wrong-peer receive from the report alone.

namespace spb::mp {
namespace {

Runtime make_runtime(int p) {
  net::NetParams np;
  np.alpha_us = 1.0;
  np.per_hop_us = 0.1;
  np.bytes_per_us = 1000.0;
  CommParams cp;
  cp.send_overhead_us = 2.0;
  cp.recv_overhead_us = 3.0;
  cp.header_bytes = 16;
  cp.chunk_header_bytes = 4;
  return Runtime(std::make_shared<net::LinearArray>(p), np, cp,
                 net::RankMapping::identity(p));
}

sim::Task idle(Comm&) { co_return; }

sim::Task send_tagged(Comm& comm, Rank dst, int tag) {
  co_await comm.send(dst, Payload::original(comm.rank(), 100), tag);
}

sim::Task recv_tagged(Comm& comm, Rank src, int tag) {
  (void)co_await comm.recv(src, tag);
}

std::string deadlock_message(Runtime& rt) {
  try {
    rt.run();
  } catch (const DeadlockError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected DeadlockError";
  return {};
}

TEST(DeadlockDiag, WrongTagNamesTagAndParkedMessage) {
  // The sender uses kData but the receiver waits for kExchange: the
  // message arrives, sits in the mailbox, and the receive starves.
  Runtime rt = make_runtime(2);
  rt.spawn(0, send_tagged(rt.comm(0), 1, tags::kData));
  rt.spawn(1, recv_tagged(rt.comm(1), 0, tags::kExchange));
  const std::string what = deadlock_message(rt);
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("recv(0, tag=1)"), std::string::npos) << what;
  EXPECT_NE(what.find("1 non-matching message(s) sit in its mailbox"),
            std::string::npos)
      << what;
}

TEST(DeadlockDiag, WrongPeerShowsEmptyMailbox) {
  // Receiver waits on rank 1, which never sends: no parked messages, so
  // the report must not claim any.
  Runtime rt = make_runtime(3);
  rt.spawn(0, recv_tagged(rt.comm(0), 1, tags::kData));
  rt.spawn(1, idle(rt.comm(1)));
  rt.spawn(2, idle(rt.comm(2)));
  const std::string what = deadlock_message(rt);
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("recv(1, tag=0)"), std::string::npos) << what;
  EXPECT_EQ(what.find("non-matching"), std::string::npos) << what;
}

TEST(DeadlockDiag, UntaggedFilterOmitsTag) {
  Runtime rt = make_runtime(2);
  rt.spawn(0, [](Comm& c) -> sim::Task { (void)co_await c.recv(1); }
                  (rt.comm(0)));
  rt.spawn(1, idle(rt.comm(1)));
  const std::string what = deadlock_message(rt);
  EXPECT_NE(what.find("recv(1)"), std::string::npos) << what;
  EXPECT_EQ(what.find("tag="), std::string::npos) << what;
}

TEST(DeadlockDiag, RecordedScheduleKeepsTheHangingRecv) {
  // With recording on, the starved receive is in the schedule as an
  // incomplete op — what the static analyzer needs to report the hang.
  Runtime rt = make_runtime(2);
  rt.enable_schedule_recording();
  rt.spawn(0, send_tagged(rt.comm(0), 1, tags::kData));
  rt.spawn(1, recv_tagged(rt.comm(1), 0, tags::kExchange));
  (void)deadlock_message(rt);
  const Schedule& sched = rt.schedule();
  ASSERT_EQ(sched.ops_of_rank(1).size(), 1u);
  const ScheduleOp& recv = sched.op(sched.ops_of_rank(1).front());
  EXPECT_TRUE(recv.is_recv());
  EXPECT_FALSE(recv.completed);
  EXPECT_EQ(recv.tag, tags::kExchange);
  EXPECT_NE(recv.to_string().find("[never completed]"), std::string::npos);
}

}  // namespace
}  // namespace spb::mp
