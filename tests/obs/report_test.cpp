// Run-report exporter: the JSON document parses, carries the acceptance
// combo's sections, and the phase table is consistent with the run totals.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mini_json.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb::obs {
namespace {

struct Produced {
  stop::RunResult result;
  machine::MachineConfig machine;
  std::string json;
};

Produced produce_report() {
  Produced p;
  p.machine = machine::paragon(4, 4);
  const stop::Problem pb =
      stop::make_problem(p.machine, dist::Kind::kRow, 4, 1024);
  p.result = stop::run(*stop::make_two_step(false), pb,
                       stop::RunConfig{}.trace().link_stats());
  ReportContext ctx;
  ctx.algorithm = "2-Step";
  ctx.machine = p.machine.name;
  ctx.distribution = "R";
  ctx.sources = 4;
  ctx.message_bytes = 1024;
  ctx.p = p.machine.p;
  std::ostringstream os;
  write_run_report(os, ctx, p.result, p.machine.topology.get());
  p.json = os.str();
  return p;
}

TEST(RunReport, EmitsWellFormedJsonWithAllSections) {
  const Produced p = produce_report();
  EXPECT_EQ(test::MiniJson::validate(p.json), std::string::npos) << p.json;
  for (const char* section :
       {"\"metrics\":", "\"faults\":", "\"network\":", "\"phases\":",
        "\"links\":", "\"time_us\":", "\"algorithm\":\"2-Step\""}) {
    EXPECT_NE(p.json.find(section), std::string::npos) << section;
  }
}

TEST(RunReport, PhaseTableIsNonEmptyAndConsistent) {
  const Produced p = produce_report();
  const auto& phases = p.result.outcome.phases;
  ASSERT_FALSE(phases.empty());

  // 2-Step annotates a gather and a bcast phase; both appear by name in
  // the report, and each phase's counters stay within the run totals.
  bool saw_gather = false;
  bool saw_bcast = false;
  std::uint64_t phase_sends = 0;
  std::uint64_t phase_recvs = 0;
  for (const auto& ph : phases) {
    saw_gather |= ph.name == "gather";
    saw_bcast |= ph.name == "bcast";
    EXPECT_GT(ph.entries, 0u) << ph.name;
    EXPECT_GE(ph.total_span_us, ph.max_span_us) << ph.name;
    phase_sends += ph.sends;
    phase_recvs += ph.recvs;
    EXPECT_NE(p.json.find("\"name\":\"" + ph.name + "\""),
              std::string::npos);
  }
  EXPECT_TRUE(saw_gather);
  EXPECT_TRUE(saw_bcast);
  // The phases partition the algorithm's communication: nothing counted
  // twice, and 2-Step sends only inside its two phases.
  EXPECT_EQ(phase_sends, p.result.outcome.metrics.total_sends);
  EXPECT_EQ(phase_recvs, p.result.outcome.metrics.total_recvs);
}

TEST(RunReport, ParallelSectionCarriesPerShardStats) {
  const auto machine = machine::paragon(8, 8);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 4, 1024);
  const stop::RunResult r =
      stop::run(*stop::make_br_lin(), pb, stop::RunConfig{}.sim_threads(2));
  ASSERT_TRUE(r.outcome.par.parallel());
  ReportContext ctx;
  ctx.algorithm = "Br_Lin";
  ctx.machine = machine.name;
  ctx.distribution = "E";
  ctx.sources = 4;
  ctx.message_bytes = 1024;
  ctx.p = machine.p;
  std::ostringstream os;
  write_run_report(os, ctx, r, machine.topology.get());
  const std::string json = os.str();
  EXPECT_EQ(test::MiniJson::validate(json), std::string::npos) << json;
  for (const char* key :
       {"\"parallel\":", "\"shards\":", "\"window_us\":", "\"windows\":",
        "\"idle_shard_windows\":", "\"window_efficiency\":",
        "\"per_shard\":", "\"busy_windows\":", "\"peak_queue_depth\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // One per-shard entry per region; "events" appears in each.
  std::size_t entries = 0;
  for (std::size_t at = json.find("\"busy_windows\":");
       at != std::string::npos;
       at = json.find("\"busy_windows\":", at + 1))
    ++entries;
  EXPECT_EQ(entries, static_cast<std::size_t>(r.outcome.par.shards));
}

TEST(RunReport, ParallelSectionOmittedForSerialRuns) {
  const auto machine = machine::paragon(2, 2);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 2, 256);
  const stop::RunResult r = stop::run(*stop::make_br_lin(), pb);
  ReportContext ctx;
  ctx.algorithm = "Br_Lin";
  ctx.machine = machine.name;
  ctx.distribution = "E";
  ctx.sources = 2;
  ctx.message_bytes = 256;
  ctx.p = machine.p;
  std::ostringstream os;
  write_run_report(os, ctx, r, machine.topology.get());
  EXPECT_EQ(os.str().find("\"parallel\":"), std::string::npos);
}

TEST(RunReport, LinksSectionOmittedWithoutProbe) {
  const auto machine = machine::paragon(2, 2);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 2, 256);
  const stop::RunResult r = stop::run(*stop::make_br_lin(), pb);
  ReportContext ctx;
  ctx.algorithm = "Br_Lin";
  ctx.machine = machine.name;
  ctx.distribution = "E";
  ctx.sources = 2;
  ctx.message_bytes = 256;
  ctx.p = machine.p;
  std::ostringstream os;
  write_run_report(os, ctx, r, machine.topology.get());
  EXPECT_EQ(test::MiniJson::validate(os.str()), std::string::npos);
  EXPECT_EQ(os.str().find("\"links\":"), std::string::npos);
}

}  // namespace
}  // namespace spb::obs
