// Minimal JSON well-formedness checker for the exporter tests: validates
// the full grammar the writers emit (objects, arrays, strings with
// escapes, numbers, booleans, null) and nothing more.  Returns the error
// position, or npos when the document parses.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace spb::test {

class MiniJson {
 public:
  /// npos = valid document; otherwise the offset where parsing failed.
  static std::size_t validate(const std::string& text) {
    MiniJson p(text);
    p.skip_ws();
    if (!p.value()) return p.pos_;
    p.skip_ws();
    return p.pos_ == text.size() ? std::string::npos : p.pos_;
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1])) != 0;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != 0; ++c, ++pos_)
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace spb::test
