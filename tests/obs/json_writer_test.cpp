#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "mini_json.h"

namespace spb::obs {
namespace {

TEST(JsonWriter, NestedContainersAndCommas) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "spb");
  w.key("series");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.begin_object();
  w.field("deep", true);
  w.end_object();
  w.end_array();
  w.field("n", std::uint64_t{7});
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            R"({"name":"spb","series":[1,2,{"deep":true}],"n":7})");
  EXPECT_EQ(test::MiniJson::validate(os.str()), std::string::npos);
}

TEST(JsonWriter, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("s", std::string_view("a\"b\\c\n\t\x01"));
  w.end_object();
  EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
  EXPECT_EQ(test::MiniJson::validate(os.str()), std::string::npos);
}

TEST(JsonWriter, NumberFormattingIsFixedPoint) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(1234567.25, 3);
  w.value(0.5, 1);
  w.value(-3);
  w.value(std::numeric_limits<double>::infinity(), 3);
  w.value(std::nan(""), 3);
  w.end_array();
  EXPECT_EQ(os.str(), "[1234567.250,0.5,-3,null,null]");
  EXPECT_EQ(test::MiniJson::validate(os.str()), std::string::npos);
}

TEST(JsonWriter, ValueInsideObjectWithoutKeyTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(1), CheckError);
}

TEST(JsonWriter, MismatchedEndTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.end_array(), CheckError);
}

TEST(MiniJson, RejectsMalformedDocuments) {
  EXPECT_NE(test::MiniJson::validate("{"), std::string::npos);
  EXPECT_NE(test::MiniJson::validate("{\"a\":}"), std::string::npos);
  EXPECT_NE(test::MiniJson::validate("[1,]"), std::string::npos);
  EXPECT_NE(test::MiniJson::validate("{\"a\":1} x"), std::string::npos);
  EXPECT_EQ(test::MiniJson::validate("{\"a\":[1,2,null]}"),
            std::string::npos);
}

}  // namespace
}  // namespace spb::obs
