// Chrome-trace exporter: golden file for a 4-rank 2-Step run, plus the
// structural guarantees Perfetto relies on — a well-formed JSON document
// and monotone slice timestamps within each rank track.
//
// Regenerate the golden after an intentional format change:
//   SPB_UPDATE_GOLDEN=1 ./test_obs --gtest_filter=ChromeTrace.GoldenTwoStep4Ranks
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb::obs {
namespace {

stop::RunResult traced_two_step_4ranks() {
  const auto machine = machine::paragon(2, 2);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 2, 256);
  return stop::run(*stop::make_two_step(false), pb,
                   stop::RunConfig{}.verify().trace());
}

std::string golden_path() {
  return std::string(SPB_TEST_DATA_DIR) + "/golden/two_step_4rank_trace.json";
}

TEST(ChromeTrace, GoldenTwoStep4Ranks) {
  const stop::RunResult r = traced_two_step_4ranks();
  std::ostringstream os;
  write_chrome_trace(os, r.trace, "2-Step");
  const std::string got = os.str();

  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test binary.
  if (std::getenv("SPB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << got;
    GTEST_SKIP() << "golden updated: " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path()
                         << " (run with SPB_UPDATE_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "trace format changed; regenerate with SPB_UPDATE_GOLDEN=1 if "
         "intentional";
}

TEST(ChromeTrace, EmitsWellFormedJson) {
  const stop::RunResult r = traced_two_step_4ranks();
  std::ostringstream os;
  write_chrome_trace(os, r.trace, "2-Step");
  EXPECT_EQ(test::MiniJson::validate(os.str()), std::string::npos);
}

// Pulls every `"key":<number>` occurrence out of the serialized trace in
// document order — enough structure to check per-track monotonicity
// without a full JSON parser.
std::vector<double> numbers_after(const std::string& text,
                                  const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    at += needle.size();
    out.push_back(std::stod(text.substr(at)));
  }
  return out;
}

TEST(ChromeTrace, TimestampsMonotonePerTrack) {
  const stop::RunResult r = traced_two_step_4ranks();
  std::ostringstream os;
  write_chrome_trace(os, r.trace, "2-Step");
  const std::string text = os.str();

  // Walk record by record: records serialize as {...} entries that each
  // carry one tid and (for slices/instants/flows) one ts.
  std::size_t at = 0;
  double last_ts[64];
  for (double& t : last_ts) t = -1;
  int slices = 0;
  while ((at = text.find("\"tid\":", at)) != std::string::npos) {
    at += 6;
    const int tid = std::stoi(text.substr(at));
    const std::size_t ts_at = text.find("\"ts\":", at);
    const std::size_t next_tid = text.find("\"tid\":", at);
    if (ts_at == std::string::npos ||
        (next_tid != std::string::npos && ts_at > next_tid))
      continue;  // metadata record without a timestamp
    const double ts = std::stod(text.substr(ts_at + 5));
    ASSERT_LT(tid, 64);
    ASSERT_GE(tid, 0);
    EXPECT_GE(ts, last_ts[tid]) << "track " << tid << " went backwards";
    last_ts[tid] = ts;
    ++slices;
  }
  EXPECT_GT(slices, 0);

  // Four rank tracks named in the metadata.
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_NE(text.find("\"name\":\"rank " + std::to_string(rank) + "\""),
              std::string::npos);
  }
  // Durations never negative.
  for (const double d : numbers_after(text, "dur")) EXPECT_GE(d, 0.0);
}

TEST(ChromeTrace, FlowArrowsPairSendsWithReceives) {
  const stop::RunResult r = traced_two_step_4ranks();
  std::ostringstream os;
  write_chrome_trace(os, r.trace, "2-Step");
  const std::string text = os.str();

  std::size_t starts = 0;
  std::size_t finishes = 0;
  std::size_t at = 0;
  while ((at = text.find("\"ph\":\"s\"", at)) != std::string::npos) {
    ++starts;
    at += 8;
  }
  at = 0;
  while ((at = text.find("\"ph\":\"f\"", at)) != std::string::npos) {
    ++finishes;
    at += 8;
  }
  EXPECT_EQ(starts, r.outcome.metrics.total_sends);
  // Every delivered message closes its arrow (no faults injected here).
  EXPECT_EQ(finishes, r.outcome.metrics.total_recvs);
}

TEST(ChromeTrace, PhaseSlicesCarryPhaseCategory) {
  const stop::RunResult r = traced_two_step_4ranks();
  std::ostringstream os;
  write_chrome_trace(os, r.trace, "2-Step");
  const std::string text = os.str();
  // 2-Step annotates "gather" and "bcast"; both must appear as phase
  // slices.
  EXPECT_NE(text.find("\"name\":\"gather\",\"cat\":\"phase\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\":\"bcast\",\"cat\":\"phase\""),
            std::string::npos);
}

}  // namespace
}  // namespace spb::obs
