// ASCII link-utilization heatmap: renders the 2-D mesh digit grids and the
// hottest-links table from a probed run.
#include "obs/heatmap.h"

#include <gtest/gtest.h>

#include <string>

#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb::obs {
namespace {

TEST(Heatmap, RendersMeshGridsAndHottestLinks) {
  const auto machine = machine::paragon(4, 4);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 4, 1024);
  const stop::RunResult r = stop::run(*stop::make_two_step(false), pb,
                                      stop::RunConfig{}.link_stats());
  ASSERT_GT(r.link_usage.link_space(), 0);

  const std::string art =
      render_link_heatmap(*machine.topology, r.link_usage);
  EXPECT_NE(art.find("link utilization on"), std::string::npos) << art;
  EXPECT_NE(art.find("per-node hottest outgoing link, busy time 0..9:"),
            std::string::npos);
  EXPECT_NE(art.find("hottest links:"), std::string::npos);
  EXPECT_NE(art.find("us busy"), std::string::npos);
  EXPECT_EQ(art.find("(no link carried traffic)"), std::string::npos);
}

TEST(Heatmap, EmptyProbeSaysNoTraffic) {
  const auto machine = machine::paragon(2, 2);
  net::LinkUsageProbe probe(machine.topology->link_space());
  const std::string art = render_link_heatmap(*machine.topology, probe);
  EXPECT_NE(art.find("(no link carried traffic)"), std::string::npos);
}

TEST(Heatmap, TopNBoundsTheTable) {
  const auto machine = machine::paragon(4, 4);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kRow, 8, 2048);
  const stop::RunResult r = stop::run(*stop::make_two_step(false), pb,
                                      stop::RunConfig{}.link_stats());
  const std::string art =
      render_link_heatmap(*machine.topology, r.link_usage, 3);
  // Three table rows at most: count " xfers" terminators.
  int rows = 0;
  std::size_t at = 0;
  while ((at = art.find(" xfers\n", at)) != std::string::npos) {
    ++rows;
    at += 7;
  }
  EXPECT_LE(rows, 3);
  EXPECT_GT(rows, 0);
}

}  // namespace
}  // namespace spb::obs
