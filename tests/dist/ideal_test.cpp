#include "dist/ideal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "coll/halving.h"
#include "common/check.h"
#include "common/math.h"

namespace spb::dist {
namespace {

std::vector<char> flags_at(int n, const std::vector<int>& positions) {
  std::vector<char> f(static_cast<std::size_t>(n), 0);
  for (const int p : positions) f[static_cast<std::size_t>(p)] = 1;
  return f;
}

TEST(IdealPositions, FirstIterationDoublesExactly) {
  // The property the placement directly controls: for k <= floor(n/2)
  // sources at ideal positions, no two sources pair in iteration 0, so the
  // active set exactly doubles.
  for (const int n : {4, 8, 10, 13, 16, 27, 64, 100}) {
    for (int k = 1; k <= n / 2; k = k < 6 ? k + 1 : k * 2) {
      const auto positions = ideal_positions(n, k);
      const auto profile =
          coll::HalvingSchedule::activity_profile(flags_at(n, positions));
      EXPECT_EQ(profile[1], 2 * k) << "n=" << n << " k=" << k;
    }
  }
}

TEST(IdealPositions, DoublesThroughoutOnPowersOfTwo) {
  // On 2^m segments the structure is clean enough for the search to keep
  // doubling until saturation in every iteration.
  for (const int n : {8, 16, 64, 128}) {
    for (int k = 1; k <= n; k *= 2) {
      const auto positions = ideal_positions(n, k);
      const auto profile =
          coll::HalvingSchedule::activity_profile(flags_at(n, positions));
      for (std::size_t t = 0; t + 1 < profile.size(); ++t)
        EXPECT_GE(profile[t + 1], std::min(n, 2 * profile[t]))
            << "n=" << n << " k=" << k << " iter=" << t;
    }
  }
}

TEST(IdealPositions, DominatesNaturalBaselines) {
  // Later iterations of odd-sized segment trees cannot always double
  // (activations land at forced positions); what the search guarantees is
  // a growth profile at least as good (lexicographically) as natural
  // placements: the evenly spaced one and the identity prefix.
  for (const int n : {10, 13, 27, 100, 120}) {
    for (int k = 1; k <= n; k = k < 6 ? k + 1 : k * 2) {
      const auto profile = coll::HalvingSchedule::activity_profile(
          flags_at(n, ideal_positions(n, k)));
      std::vector<int> spaced;
      std::vector<int> prefix;
      for (int j = 0; j < k; ++j) {
        spaced.push_back(static_cast<int>(
            static_cast<long long>(j) * n / k));
        prefix.push_back(j);
      }
      EXPECT_GE(profile, coll::HalvingSchedule::activity_profile(
                             flags_at(n, spaced)))
          << "n=" << n << " k=" << k << " vs evenly spaced";
      EXPECT_GE(profile, coll::HalvingSchedule::activity_profile(
                             flags_at(n, prefix)))
          << "n=" << n << " k=" << k << " vs identity prefix";
    }
  }
}

TEST(IdealPositions, TwoSourcesOnTenAvoidTheMiddlePairing) {
  // The paper's observation: on 10 rows the pair {0, 5} merges in the very
  // first iteration; ideal k=2 must avoid distance 5.
  const auto positions = ideal_positions(10, 2);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_NE(positions[1] - positions[0], 5);
  const auto profile =
      coll::HalvingSchedule::activity_profile(flags_at(10, positions));
  EXPECT_EQ(profile[1], 4);
}

TEST(IdealPositions, SortedDistinctInRange) {
  for (const int n : {1, 5, 16, 33}) {
    for (int k = 0; k <= n; ++k) {
      const auto positions = ideal_positions(n, k);
      ASSERT_EQ(static_cast<int>(positions.size()), k);
      EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
      const std::set<int> unique(positions.begin(), positions.end());
      EXPECT_EQ(static_cast<int>(unique.size()), k);
      if (k > 0) {
        EXPECT_GE(positions.front(), 0);
        EXPECT_LT(positions.back(), n);
      }
    }
  }
}

TEST(IdealPositions, MemoizationIsStable) {
  const auto a = ideal_positions(64, 9);
  const auto b = ideal_positions(64, 9);
  EXPECT_EQ(a, b);
}

TEST(IdealPositions, TieBreakPrefersSpread) {
  // Among equally fast-growing placements the construction favours large
  // pairwise distance: for k=2 on 16 the sources must not be adjacent.
  const auto positions = ideal_positions(16, 2);
  EXPECT_GT(positions[1] - positions[0], 1);
}

TEST(IdealPositions, RejectsBadArguments) {
  EXPECT_THROW(ideal_positions(0, 0), CheckError);
  EXPECT_THROW(ideal_positions(4, 5), CheckError);
  EXPECT_THROW(ideal_positions(4, -1), CheckError);
}

TEST(IdealRows, FullRowsAtIdealRowPositions) {
  const Grid g{10, 10};
  const auto sources = ideal_rows(g, 30);
  const auto counts = g.row_counts(sources);
  const auto rows = ideal_positions(10, 3);
  int full = 0;
  for (int r = 0; r < 10; ++r) {
    if (counts[static_cast<std::size_t>(r)] > 0) {
      EXPECT_TRUE(std::binary_search(rows.begin(), rows.end(), r));
      ++full;
    }
  }
  EXPECT_EQ(full, 3);
  // 30 = 3 full rows of 10.
  for (const int r : rows) EXPECT_EQ(counts[static_cast<std::size_t>(r)], 10);
}

TEST(IdealRows, PartialRemainderFillsFromColumnZero) {
  const Grid g{10, 10};
  const auto sources = ideal_rows(g, 25);
  const auto counts = g.row_counts(sources);
  std::vector<int> nonzero;
  for (int r = 0; r < 10; ++r)
    if (counts[static_cast<std::size_t>(r)] > 0) nonzero.push_back(counts[static_cast<std::size_t>(r)]);
  std::sort(nonzero.begin(), nonzero.end());
  EXPECT_EQ(nonzero, (std::vector<int>{5, 10, 10}));
}

TEST(IdealCols, TransposesIdealRows) {
  const Grid g{6, 9};
  const auto cols = ideal_cols(g, 12);  // 2 full columns
  const auto counts = g.col_counts(cols);
  int full = 0;
  for (const int c : counts)
    if (c > 0) {
      EXPECT_EQ(c, 6);
      ++full;
    }
  EXPECT_EQ(full, 2);
}

TEST(IdealLinear, ColumnPhaseDoublesActiveRows) {
  // End-to-end sanity: the row set of ideal_rows doubles as fast as the
  // halving pattern allows, which is what Repos_xy_source pays for.
  const Grid g{16, 16};
  const auto sources = ideal_rows(g, 64);  // 4 full rows
  std::set<int> rows;
  for (const Rank s : sources) rows.insert(g.row_of(s));
  const auto profile = coll::HalvingSchedule::activity_profile(
      flags_at(16, std::vector<int>(rows.begin(), rows.end())));
  EXPECT_EQ(profile[1], 8);
  EXPECT_EQ(profile[2], 16);
}

}  // namespace
}  // namespace spb::dist
