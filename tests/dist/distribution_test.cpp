#include "dist/distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/math.h"

namespace spb::dist {
namespace {

const Grid k10x10{10, 10};

std::set<std::pair<int, int>> cells(const Grid& g,
                                    const std::vector<Rank>& sources) {
  std::set<std::pair<int, int>> out;
  for (const Rank s : sources) out.insert({g.row_of(s), g.col_of(s)});
  return out;
}

// ---------------------------------------------------------------- generic

TEST(Distribution, EveryFamilyProducesExactlySDistinctSources) {
  // The universal contract, across mesh shapes (square, wide, tall, line)
  // and the whole range of s.
  const std::vector<Grid> grids = {
      {10, 10}, {6, 8}, {4, 30}, {16, 16}, {1, 12}, {12, 1}, {3, 5}};
  for (const Grid& g : grids) {
    for (const Kind kind : all_kinds()) {
      for (int s = 1; s <= g.p(); s = s < 8 ? s + 1 : s + 7) {
        const auto sources = generate(kind, g, s, 99);
        ASSERT_EQ(static_cast<int>(sources.size()), s)
            << kind_name(kind) << " on " << g.rows << "x" << g.cols;
        ASSERT_TRUE(std::is_sorted(sources.begin(), sources.end()));
        ASSERT_TRUE(std::adjacent_find(sources.begin(), sources.end()) ==
                    sources.end());
        ASSERT_GE(sources.front(), 0);
        ASSERT_LT(sources.back(), g.p());
      }
    }
  }
}

TEST(Distribution, FullMeshIsEveryone) {
  const Grid g{5, 6};
  for (const Kind kind : all_kinds()) {
    const auto sources = generate(kind, g, g.p(), 1);
    for (int i = 0; i < g.p(); ++i)
      EXPECT_EQ(sources[static_cast<std::size_t>(i)], i)
          << kind_name(kind);
  }
}

TEST(Distribution, NamesRoundTrip) {
  for (const Kind kind : all_kinds())
    EXPECT_EQ(kind_from_name(kind_name(kind)), kind);
  EXPECT_THROW(kind_from_name("bogus"), CheckError);
  EXPECT_EQ(kind_name(Kind::kDiagRight), "Dr");
  EXPECT_EQ(kind_name(Kind::kSquare), "Sq");
}

TEST(Distribution, InvalidSRejected) {
  for (const Kind kind : all_kinds()) {
    EXPECT_THROW(generate(kind, k10x10, 0, 1), CheckError);
    EXPECT_THROW(generate(kind, k10x10, 101, 1), CheckError);
  }
}

// -------------------------------------------------------------------- R/C

TEST(RowDistribution, R30MatchesPaperFigure1) {
  // 3 evenly spaced full rows: 0, 3, 6.
  const auto sources = row_distribution(k10x10, 30);
  const auto got = cells(k10x10, sources);
  for (const int row : {0, 3, 6})
    for (int col = 0; col < 10; ++col)
      EXPECT_TRUE(got.count({row, col})) << row << "," << col;
}

TEST(RowDistribution, R20UsesRows0And5) {
  // i = 2 evenly spaced rows on 10 rows: 0 and 5 — the placement the paper
  // calls out as pairing badly in Br_Lin's first iteration.
  const auto sources = row_distribution(k10x10, 20);
  const Grid& g = k10x10;
  std::set<int> rows;
  for (const Rank s : sources) rows.insert(g.row_of(s));
  EXPECT_EQ(rows, (std::set<int>{0, 5}));
}

TEST(RowDistribution, PartialLastRow) {
  const auto sources = row_distribution(k10x10, 25);
  // Rows 0,3,6; row 6 holds only 5 sources (columns 0..4).
  const auto got = cells(k10x10, sources);
  EXPECT_TRUE(got.count({6, 4}));
  EXPECT_FALSE(got.count({6, 5}));
}

TEST(ColumnDistribution, MirrorsRows) {
  const auto rows = row_distribution(k10x10, 30);
  const auto cols = column_distribution(k10x10, 30);
  // C(30) is R(30) transposed on a square mesh.
  std::set<std::pair<int, int>> transposed;
  for (const Rank s : rows)
    transposed.insert({k10x10.col_of(s), k10x10.row_of(s)});
  EXPECT_EQ(cells(k10x10, cols), transposed);
}

TEST(ColumnDistribution, CountsPerColumn) {
  const Grid g{6, 8};
  const auto sources = column_distribution(g, 14);  // ceil(14/6) = 3 cols
  const auto counts = g.col_counts(sources);
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[2], 6);
  EXPECT_EQ(counts[5], 2);  // partial last column (evenly spaced: 0,2,5)
}

// ---------------------------------------------------------------------- E

TEST(EqualDistribution, FirstProcessorAlwaysASource) {
  for (int s = 1; s <= 100; s += 9)
    EXPECT_EQ(equal_distribution(k10x10, s).front(), 0);
}

TEST(EqualDistribution, SpacingIsFloorOrCeil) {
  for (const int s : {3, 7, 30, 33, 64}) {
    const auto sources = equal_distribution(k10x10, s);
    const int lo = 100 / s;
    const int hi = static_cast<int>(ceil_div(100, s));
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const int gap = sources[i] - sources[i - 1];
      EXPECT_GE(gap, lo) << "s=" << s;
      EXPECT_LE(gap, hi) << "s=" << s;
    }
  }
}

TEST(EqualDistribution, PowerOfTwoCaseIsExactStride) {
  // E(50) on p=100: every second rank — the s = 2^l-style alignment the
  // paper's Figure 2 analysis distinguishes.
  const auto sources = equal_distribution(k10x10, 50);
  for (std::size_t i = 0; i < sources.size(); ++i)
    EXPECT_EQ(sources[i], static_cast<Rank>(2 * i));
}

// ------------------------------------------------------------------ Dr/Dl

TEST(DiagRight, MainDiagonalFirst) {
  const auto sources = diag_right_distribution(k10x10, 10);
  for (int j = 0; j < 10; ++j)
    EXPECT_TRUE(std::binary_search(sources.begin(), sources.end(),
                                   k10x10.rank_of(j, j)));
}

TEST(DiagRight, Dr30UsesThreeEvenlySpacedDiagonals) {
  const auto got = cells(k10x10, diag_right_distribution(k10x10, 30));
  for (int row = 0; row < 10; ++row)
    for (const int offset : {0, 3, 6})
      EXPECT_TRUE(got.count({row, (row + offset) % 10}))
          << row << " offset " << offset;
}

TEST(DiagRight, WrapsAroundColumns) {
  const auto got = cells(k10x10, diag_right_distribution(k10x10, 30));
  // Diagonal offset 6 wraps: row 5 -> column (5+6) % 10 = 1.
  EXPECT_TRUE(got.count({5, 1}));
}

TEST(DiagLeft, AntiDiagonalFirst) {
  const auto sources = diag_left_distribution(k10x10, 10);
  for (int j = 0; j < 10; ++j)
    EXPECT_TRUE(std::binary_search(sources.begin(), sources.end(),
                                   k10x10.rank_of(j, 9 - j)));
}

TEST(Diagonals, EachRowAndColumnBalanced) {
  // A full diagonal set places the same number of sources in every row,
  // and (on a square mesh) every column — the property that makes
  // diagonals friendly to Br_xy_source.
  for (const int s : {10, 20, 30}) {
    for (auto* fn : {&diag_right_distribution, &diag_left_distribution}) {
      const auto sources = fn(k10x10, s);
      const auto rows = k10x10.row_counts(sources);
      const auto cols = k10x10.col_counts(sources);
      for (const int c : rows) EXPECT_EQ(c, s / 10);
      for (const int c : cols) EXPECT_EQ(c, s / 10);
    }
  }
}

// ---------------------------------------------------------------------- B

TEST(Band, SquareMeshIsOneWideBand) {
  // b = ceil(c/r) = 1 on 16x16; width ceil(s/16) diagonals starting at the
  // main diagonal — "a single diagonal band of width s/16".
  const Grid g{16, 16};
  const auto got = cells(g, band_distribution(g, 64));
  for (int row = 0; row < 16; ++row)
    for (int m = 0; m < 4; ++m)
      EXPECT_TRUE(got.count({row, (row + m) % 16})) << row << " " << m;
}

TEST(Band, WideMeshHasMultipleBands) {
  const Grid g{4, 12};  // b = 3 bands at offsets 0, 4, 8
  const auto got = cells(g, band_distribution(g, 12));
  for (int row = 0; row < 4; ++row)
    for (const int off : {0, 4, 8})
      EXPECT_TRUE(got.count({row, (row + off) % 12}));
}

// --------------------------------------------------------------------- Cr

TEST(Cross, Cr30MatchesPaperFigure1) {
  // Two full rows (0, 5), column 0 fully a source, column 5 holding
  // exactly 4 source cells (rows 0, 1, 2, 5 — two of them row overlaps).
  const auto sources = cross_distribution(k10x10, 30);
  const auto got = cells(k10x10, sources);
  for (int col = 0; col < 10; ++col) {
    EXPECT_TRUE(got.count({0, col}));
    EXPECT_TRUE(got.count({5, col}));
  }
  for (int row = 0; row < 10; ++row) EXPECT_TRUE(got.count({row, 0}));
  int col5 = 0;
  for (int row = 0; row < 10; ++row) col5 += got.count({row, 5});
  EXPECT_EQ(col5, 4);
}

TEST(Cross, RowAndColumnPartsRoughlyEqual) {
  const Grid g{8, 8};
  const auto sources = cross_distribution(g, 24);
  const auto rows = g.row_counts(sources);
  // ceil(24/16) = 2 full rows.
  EXPECT_EQ(std::count(rows.begin(), rows.end(), 8), 2);
}

// --------------------------------------------------------------------- Sq

TEST(Square, Sq30IsASixBySixBlockAtOrigin) {
  const auto got = cells(k10x10, square_distribution(k10x10, 30));
  // Column-by-column fill of a 6-high block: 5 full columns of 6 = 30.
  for (int col = 0; col < 5; ++col)
    for (int row = 0; row < 6; ++row)
      EXPECT_TRUE(got.count({row, col})) << row << "," << col;
  EXPECT_FALSE(got.count({0, 5}));
}

TEST(Square, PerfectSquare) {
  const auto got = cells(k10x10, square_distribution(k10x10, 25));
  for (int col = 0; col < 5; ++col)
    for (int row = 0; row < 5; ++row) EXPECT_TRUE(got.count({row, col}));
}

TEST(Square, ShortMeshLeansWide) {
  const Grid g{4, 30};
  const auto got = cells(g, square_distribution(g, 25));
  // side would be 5 > 4 rows: block is 4 high, ceil(25/4) = 7 wide.
  for (int col = 0; col < 6; ++col)
    for (int row = 0; row < 4; ++row) EXPECT_TRUE(got.count({row, col}));
  EXPECT_TRUE(got.count({0, 6}));
  EXPECT_FALSE(got.count({2, 6}));
}

TEST(Square, DoesNotFitThrows) {
  const Grid g{2, 3};
  EXPECT_THROW(square_distribution(g, 100), CheckError);
}

// ------------------------------------------------------------------- Rand

TEST(Random, SeedDeterminism) {
  EXPECT_EQ(random_distribution(k10x10, 20, 5),
            random_distribution(k10x10, 20, 5));
  EXPECT_NE(random_distribution(k10x10, 20, 5),
            random_distribution(k10x10, 20, 6));
}

}  // namespace
}  // namespace spb::dist
