#include <gtest/gtest.h>

#include "common/check.h"
#include "dist/distribution.h"
#include "dist/grid.h"
#include "dist/render.h"

namespace spb::dist {
namespace {

TEST(Grid, RowMajorIndexing) {
  const Grid g{4, 6};
  EXPECT_EQ(g.p(), 24);
  EXPECT_EQ(g.rank_of(0, 0), 0);
  EXPECT_EQ(g.rank_of(2, 3), 15);
  EXPECT_EQ(g.row_of(15), 2);
  EXPECT_EQ(g.col_of(15), 3);
  for (Rank r = 0; r < g.p(); ++r)
    EXPECT_EQ(g.rank_of(g.row_of(r), g.col_of(r)), r);
}

TEST(Grid, RowAndColumnRankLists) {
  const Grid g{3, 4};
  EXPECT_EQ(g.row_ranks(1), (std::vector<Rank>{4, 5, 6, 7}));
  EXPECT_EQ(g.col_ranks(2), (std::vector<Rank>{2, 6, 10}));
  EXPECT_THROW(g.row_ranks(3), CheckError);
  EXPECT_THROW(g.col_ranks(-1), CheckError);
}

TEST(Grid, SourceCountsPerLine) {
  const Grid g{3, 4};
  const std::vector<Rank> sources = {0, 1, 5, 9};  // (0,0),(0,1),(1,1),(2,1)
  EXPECT_EQ(g.row_counts(sources), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(g.col_counts(sources), (std::vector<int>{1, 3, 0, 0}));
}

TEST(Render, MarksSourcesOnTheGrid) {
  const Grid g{3, 4};
  const std::string out = render(g, {0, 5, 11});
  EXPECT_EQ(out,
            "S...\n"
            ".S..\n"
            "...S\n");
}

TEST(Render, PaperFigure1RowDistribution) {
  const Grid g{10, 10};
  const std::string out = render(g, row_distribution(g, 30));
  // Three full rows of 'S': rows 0, 3, 6.
  EXPECT_EQ(out.substr(0, 11), "SSSSSSSSSS\n");
  EXPECT_EQ(out.substr(33, 11), "SSSSSSSSSS\n");
  EXPECT_EQ(out.substr(66, 11), "SSSSSSSSSS\n");
  EXPECT_EQ(out.substr(11, 11), "..........\n");
}

}  // namespace
}  // namespace spb::dist
