// Regression sweep for the source-count math on degenerate and extreme
// rectangular grids.  The band / cross / diagonal constructions size their
// geometric features with ceil_div and float-free integer casts; on 1xp,
// px1 and 2x64-style meshes those features collapse (a diagonal is a
// point, a cross loses an arm, a band is the whole line), which is exactly
// where an off-by-one over- or under-shoots s.  The contract here is the
// universal one: every family returns exactly s distinct in-range ranks
// for EVERY s on EVERY shape — exhaustively, no strides.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/distribution.h"

namespace spb::dist {
namespace {

void expect_exactly_s(const Grid& g, Kind kind, int s, std::uint64_t seed) {
  const std::vector<Rank> sources = generate(kind, g, s, seed);
  ASSERT_EQ(static_cast<int>(sources.size()), s)
      << kind_name(kind) << " on " << g.rows << "x" << g.cols << " s=" << s
      << " seed=" << seed;
  ASSERT_TRUE(std::is_sorted(sources.begin(), sources.end()))
      << kind_name(kind) << " on " << g.rows << "x" << g.cols << " s=" << s;
  ASSERT_EQ(std::adjacent_find(sources.begin(), sources.end()),
            sources.end())
      << "duplicate rank from " << kind_name(kind) << " on " << g.rows
      << "x" << g.cols << " s=" << s;
  ASSERT_GE(sources.front(), 0);
  ASSERT_LT(sources.back(), g.p()) << kind_name(kind) << " on " << g.rows
                                   << "x" << g.cols << " s=" << s;
}

TEST(DegenerateGrids, LineMeshesEverySEveryFamily) {
  // 1xp and px1: rows or columns degenerate to single cells.
  for (const Grid& g : {Grid{1, 128}, Grid{128, 1}, Grid{1, 7}, Grid{7, 1}}) {
    for (const Kind kind : all_kinds())
      for (int s = 1; s <= g.p(); ++s) expect_exactly_s(g, kind, s, 42);
  }
}

TEST(DegenerateGrids, TwoByWideMeshesEverySEveryFamily) {
  // 2x64 / 64x2: the issue's flagged shape — diagonals wrap 32 times,
  // bands round to one-row stripes, crosses have a 2-cell arm.
  for (const Grid& g : {Grid{2, 64}, Grid{64, 2}, Grid{2, 5}, Grid{5, 2}}) {
    for (const Kind kind : all_kinds())
      for (int s = 1; s <= g.p(); ++s) expect_exactly_s(g, kind, s, 42);
  }
}

TEST(DegenerateGrids, ExtremeAspectRatiosEverySEveryFamily) {
  for (const Grid& g : {Grid{3, 64}, Grid{64, 3}, Grid{4, 32}, Grid{32, 4}}) {
    for (const Kind kind : all_kinds())
      for (int s = 1; s <= g.p(); ++s) expect_exactly_s(g, kind, s, 42);
  }
}

TEST(DegenerateGrids, SingleCellMesh) {
  for (const Kind kind : all_kinds()) expect_exactly_s({1, 1}, kind, 1, 42);
}

TEST(DegenerateGrids, SeedSweepOnRandomizedFamilies) {
  // The seeded families must hold the contract for any seed, not just the
  // one the figures use.
  for (const Grid& g : {Grid{1, 64}, Grid{2, 64}, Grid{64, 2}}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 99ULL, 0xfeedULL}) {
      for (const Kind kind : all_kinds())
        for (const int s : {1, 2, 3, g.p() / 2, g.p() - 1, g.p()})
          expect_exactly_s(g, kind, s, seed);
    }
  }
}

TEST(DegenerateGrids, BoundarySAtFeatureCollapse) {
  // s values around the geometric feature sizes, where ceil_div rounding
  // decides how many rows/arms/wraps participate.
  for (const Grid& g : {Grid{2, 64}, Grid{64, 2}, Grid{1, 128}}) {
    const std::vector<int> boundary = {
        1,         2,          g.rows,     g.cols,        g.p() / 2 - 1,
        g.p() / 2, g.p() / 2 + 1, g.p() - 1, g.p()};
    for (const Kind kind : all_kinds())
      for (const int s : boundary)
        if (s >= 1 && s <= g.p()) expect_exactly_s(g, kind, s, 7);
  }
}

}  // namespace
}  // namespace spb::dist
