// Golden renders of the paper's Figure 1: "Placement of 30 sources in
// row, cross, and right diagonal distributions" on a 10x10 mesh.  These
// pin the generators to the paper's pictures character by character.
#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/render.h"

namespace spb::dist {
namespace {

const Grid k10x10{10, 10};

TEST(Figure1Golden, Row30) {
  EXPECT_EQ(render(k10x10, row_distribution(k10x10, 30)),
            "SSSSSSSSSS\n"
            "..........\n"
            "..........\n"
            "SSSSSSSSSS\n"
            "..........\n"
            "..........\n"
            "SSSSSSSSSS\n"
            "..........\n"
            "..........\n"
            "..........\n");
}

TEST(Figure1Golden, DiagRight30) {
  // Three evenly spaced right diagonals (offsets 0, 3, 6), wrapping in
  // the column dimension.
  EXPECT_EQ(render(k10x10, diag_right_distribution(k10x10, 30)),
            "S..S..S...\n"
            ".S..S..S..\n"
            "..S..S..S.\n"
            "...S..S..S\n"
            "S...S..S..\n"
            ".S...S..S.\n"
            "..S...S..S\n"
            "S..S...S..\n"
            ".S..S...S.\n"
            "..S..S...S\n");
}

TEST(Figure1Golden, Cross30) {
  // Two full rows (0, 5), column 0 full, column 5 holding 4 source cells
  // (two of them row overlaps) — the paper's exact description.
  EXPECT_EQ(render(k10x10, cross_distribution(k10x10, 30)),
            "SSSSSSSSSS\n"
            "S....S....\n"
            "S....S....\n"
            "S.........\n"
            "S.........\n"
            "SSSSSSSSSS\n"
            "S.........\n"
            "S.........\n"
            "S.........\n"
            "S.........\n");
}

}  // namespace
}  // namespace spb::dist
