// End-to-end smoke: every algorithm broadcasts correctly on a small
// Paragon and a small T3D with a couple of distributions.  The per-module
// suites dig into details; this one catches wiring breakage fast.
#include <gtest/gtest.h>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace spb::stop {
namespace {

TEST(Smoke, AllAlgorithmsParagon6x8) {
  const auto machine = machine::paragon(6, 8);
  for (const auto& alg : all_algorithms()) {
    for (const dist::Kind kind :
         {dist::Kind::kEqual, dist::Kind::kSquare, dist::Kind::kRow}) {
      const Problem pb = make_problem(machine, kind, 11, 512);
      const RunResult r = run(*alg, pb);
      EXPECT_GT(r.time_us, 0) << alg->name();
    }
  }
}

TEST(Smoke, AllAlgorithmsT3D32) {
  const auto machine = machine::t3d(32);
  for (const auto& alg : all_algorithms()) {
    const Problem pb = make_problem(machine, dist::Kind::kEqual, 7, 1024);
    const RunResult r = run(*alg, pb);
    EXPECT_GT(r.time_us, 0) << alg->name();
  }
}

}  // namespace
}  // namespace spb::stop
