// Unit tests of the fault-injection library itself: spec parsing, plan
// determinism, and the delivery guarantees the runtime machinery depends
// on (the final attempt is never dropped, backoff is bounded).
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spb::fault {
namespace {

TEST(FaultSpec, DefaultIsNoFaults) {
  constexpr FaultSpec off{};
  static_assert(!off.any());
  static_assert(!off.message_faults());
  static_assert(!off.degrades_links());
  EXPECT_EQ(off.to_string(), "");
  EXPECT_NO_THROW(off.validate());
}

TEST(FaultSpec, ParseRoundTripsThroughToString) {
  const FaultSpec spec = FaultSpec::parse(
      "drop=0.1,dup=0.05,links=0.25x4,lat=2,straggle=1x3,window=5000,"
      "timeout=80,attempts=6");
  EXPECT_DOUBLE_EQ(spec.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.dup_rate, 0.05);
  EXPECT_DOUBLE_EQ(spec.link_fraction, 0.25);
  EXPECT_DOUBLE_EQ(spec.bandwidth_divisor, 4.0);
  EXPECT_DOUBLE_EQ(spec.latency_factor, 2.0);
  EXPECT_EQ(spec.stragglers, 1);
  EXPECT_DOUBLE_EQ(spec.straggle_factor, 3.0);
  EXPECT_DOUBLE_EQ(spec.window_us, 5000.0);
  EXPECT_DOUBLE_EQ(spec.retransmit_timeout_us, 80.0);
  EXPECT_EQ(spec.max_attempts, 6);

  const FaultSpec again = FaultSpec::parse(spec.to_string());
  EXPECT_EQ(again.to_string(), spec.to_string());
  EXPECT_DOUBLE_EQ(again.drop_rate, spec.drop_rate);
  EXPECT_DOUBLE_EQ(again.bandwidth_divisor, spec.bandwidth_divisor);
  EXPECT_EQ(again.max_attempts, spec.max_attempts);
}

TEST(FaultSpec, ParseRejectsUnknownAndMalformed) {
  EXPECT_THROW(FaultSpec::parse("frobnicate=1"), CheckError);
  EXPECT_THROW(FaultSpec::parse("drop"), CheckError);
  EXPECT_THROW(FaultSpec::parse("drop=1.5"), CheckError);   // rate >= 1
  EXPECT_THROW(FaultSpec::parse("drop=-0.1"), CheckError);
  EXPECT_THROW(FaultSpec::parse("links=2x4"), CheckError);  // fraction > 1
  EXPECT_THROW(FaultSpec::parse("attempts=0"), CheckError);
  EXPECT_NO_THROW(FaultSpec::parse(""));
}

// The strict parser (common/parse.h) must turn the classic std::stod /
// std::stoull traps into actionable errors instead of silent surprises.
TEST(FaultSpec, ParseErrorsSayWhatWentWrong) {
  const auto message_of = [](const std::string& text) -> std::string {
    try {
      FaultSpec::parse(text);
    } catch (const CheckError& e) {
      return e.what();
    }
    return "";
  };
  // drop=-1 is numerically fine but out of the allowed range.
  EXPECT_NE(message_of("drop=-1").find("must be in [0, 1)"),
            std::string::npos);
  // lat=1e999 overflows a double; stod's bare out_of_range had no text.
  EXPECT_NE(message_of("lat=1e999").find("out of range"), std::string::npos);
  // timeout=5x is a partial parse; the leftover must be named.
  EXPECT_NE(message_of("timeout=5x").find("trailing junk 'x'"),
            std::string::npos);
  // Non-finite spellings are not usable fault parameters.
  EXPECT_NE(message_of("lat=inf").find("finite"), std::string::npos);
}

TEST(FaultPlan, ParsePlanRejectsNegativeSeed) {
  // std::stoull would wrap "-1" to 2^64-1 and silently change every
  // seeded decision in the plan.
  try {
    parse_plan("-1:drop=0.1", /*link_space=*/10, /*ranks=*/4, 1);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos);
  }
  // A valid seed still parses.
  EXPECT_NO_THROW(parse_plan("7:drop=0.1", 10, 4, 1));
}

TEST(FaultPlan, SameSeedSameDecisions) {
  const FaultSpec spec =
      FaultSpec::parse("drop=0.3,dup=0.1,links=0.25x4,straggle=2x3");
  const FaultPlan a(spec, 7, /*link_space=*/200, /*ranks=*/16);
  const FaultPlan b(spec, 7, 200, 16);
  EXPECT_EQ(a.degraded_links(), b.degraded_links());
  EXPECT_EQ(a.straggler_ranks(), b.straggler_ranks());
  for (Rank src = 0; src < 16; ++src)
    for (std::uint32_t seq = 0; seq < 40; ++seq)
      for (int attempt = 0; attempt < 4; ++attempt) {
        ASSERT_EQ(a.transit_dropped(src, 15 - src, seq, attempt),
                  b.transit_dropped(src, 15 - src, seq, attempt));
        ASSERT_EQ(a.ack_dropped(src, 15 - src, seq, attempt),
                  b.ack_dropped(src, 15 - src, seq, attempt));
      }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  // 2560 independent ~30% coin flips: the chance two seeds agree on all of
  // them is astronomically small, so equality means the seed is ignored.
  const FaultSpec spec = FaultSpec::parse("drop=0.3");
  const FaultPlan a(spec, 1, 200, 16);
  const FaultPlan b(spec, 2, 200, 16);
  int differing = 0;
  for (Rank src = 0; src < 16; ++src)
    for (std::uint32_t seq = 0; seq < 40; ++seq)
      for (int attempt = 0; attempt < 4; ++attempt)
        if (a.transit_dropped(src, (src + 1) % 16, seq, attempt) !=
            b.transit_dropped(src, (src + 1) % 16, seq, attempt))
          ++differing;
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, LastAttemptIsNeverDropped) {
  // Even at a 99% drop rate, attempt max_attempts-1 always goes through —
  // this is the delivery guarantee stop::verify rests on.
  const FaultSpec spec = FaultSpec::parse("drop=0.99,attempts=3");
  const FaultPlan plan(spec, 11, 200, 32);
  int dropped_earlier = 0;
  for (Rank src = 0; src < 32; ++src)
    for (std::uint32_t seq = 0; seq < 50; ++seq) {
      EXPECT_FALSE(plan.transit_dropped(src, (src + 5) % 32, seq, 2));
      if (plan.transit_dropped(src, (src + 5) % 32, seq, 0))
        ++dropped_earlier;
    }
  // Sanity: the earlier attempts really are dropped at ~99%.
  EXPECT_GT(dropped_earlier, 1500);
}

TEST(FaultPlan, BackoffDoublesAndCapsAt32x) {
  const FaultSpec spec = FaultSpec::parse("drop=0.1,timeout=50");
  const FaultPlan plan(spec, 1, 10, 4);
  EXPECT_DOUBLE_EQ(plan.backoff_us(0), 50.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(1), 100.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(4), 800.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(5), 1600.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(9), 1600.0);  // capped
}

TEST(FaultPlan, SeededChoicesHaveTheRequestedSizes) {
  const FaultSpec spec = FaultSpec::parse("links=0.25x4,straggle=2x3");
  const FaultPlan plan(spec, 42, /*link_space=*/100, /*ranks=*/16);
  EXPECT_EQ(plan.degraded_links().size(),
            static_cast<std::size_t>(std::ceil(0.25 * 100)));
  EXPECT_TRUE(std::is_sorted(plan.degraded_links().begin(),
                             plan.degraded_links().end()));
  for (const LinkId l : plan.degraded_links()) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 100);
    EXPECT_TRUE(plan.link_degraded(l));
    EXPECT_DOUBLE_EQ(plan.bandwidth_divisor(l), 4.0);
  }
  ASSERT_EQ(plan.straggler_ranks().size(), 2u);
  for (const Rank r : plan.straggler_ranks())
    EXPECT_DOUBLE_EQ(plan.rank_slowdown(r), 3.0);
  int healthy = 0;
  for (Rank r = 0; r < 16; ++r)
    if (plan.rank_slowdown(r) == 1.0) ++healthy;
  EXPECT_EQ(healthy, 14);
}

TEST(FaultPlan, ForLinksHookDegradesExactlyTheGivenLinks) {
  const FaultSpec spec = FaultSpec::parse("links=0.5x4,lat=2");
  const FaultPlan plan =
      FaultPlan::for_links(spec, 1, {3, 7}, /*link_space=*/10, /*ranks=*/4);
  EXPECT_TRUE(plan.link_degraded(3));
  EXPECT_TRUE(plan.link_degraded(7));
  EXPECT_FALSE(plan.link_degraded(4));
  EXPECT_DOUBLE_EQ(plan.bandwidth_divisor(3), 4.0);
  EXPECT_DOUBLE_EQ(plan.latency_factor(7), 2.0);
  EXPECT_DOUBLE_EQ(plan.bandwidth_divisor(4), 1.0);
  EXPECT_EQ(plan.degraded_links(), (std::vector<LinkId>{3, 7}));
}

TEST(FaultPlan, WindowsAlternateAndZeroMeansAlways) {
  const FaultSpec windowed = FaultSpec::parse("links=0.2x2,window=100");
  const FaultPlan plan(windowed, 1, 50, 4);
  EXPECT_EQ(plan.window_index(50.0), 0u);
  EXPECT_EQ(plan.window_index(150.0), 1u);
  EXPECT_EQ(plan.window_index(250.0), 2u);
  EXPECT_TRUE(plan.window_active(50.0));    // even window: degraded
  EXPECT_FALSE(plan.window_active(150.0));  // odd window: healthy
  EXPECT_TRUE(plan.window_active(250.0));

  const FaultSpec permanent = FaultSpec::parse("links=0.2x2");
  const FaultPlan always(permanent, 1, 50, 4);
  EXPECT_EQ(always.window_index(1e9), 0u);
  EXPECT_TRUE(always.window_active(0.0));
  EXPECT_TRUE(always.window_active(1e9));
}

TEST(ParsePlan, SeedPrefixAndDefault) {
  const FaultPlanPtr with_seed = parse_plan("42:drop=0.1", 10, 4);
  EXPECT_EQ(with_seed->seed(), 42u);
  EXPECT_DOUBLE_EQ(with_seed->spec().drop_rate, 0.1);

  const FaultPlanPtr bare = parse_plan("drop=0.1", 10, 4, /*default_seed=*/7);
  EXPECT_EQ(bare->seed(), 7u);
  EXPECT_THROW(parse_plan("nonsense:drop=0.1", 10, 4), CheckError);
}

}  // namespace
}  // namespace spb::fault
