// Faults live below the logical schedule: retransmits, duplicate
// deliveries, detours and stragglers are runtime artifacts that the
// mailbox's sequencing hides from the program.  The recorded symbolic
// schedule must therefore be byte-for-byte as analyzable under the full
// adverse load as a clean run — same op counts, same matching shape, and
// the static analyzer accepts it without a single violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analyze/checks.h"
#include "analyze/record.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

namespace spb::analyze {
namespace {

std::shared_ptr<const fault::FaultPlan> adverse_plan(
    const machine::MachineConfig& machine, std::uint64_t seed) {
  const fault::FaultSpec spec = fault::FaultSpec::parse(
      "drop=0.1,dup=0.05,links=0.25x4,lat=2,straggle=1x3");
  return std::make_shared<const fault::FaultPlan>(
      spec, seed, machine.topology->link_space(), machine.p);
}

class FaultedSchedule : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultedSchedule, AnalyzerAcceptsEveryAlgorithmUnderAdverseLoad) {
  const machine::MachineConfig machine = machine::from_name(GetParam());
  const stop::Problem pb = stop::make_problem(
      machine, dist::Kind::kDiagRight, machine.p >= 64 ? 16 : 8, 512);
  const auto plan = adverse_plan(machine, 42);
  for (const stop::AlgorithmPtr& alg : stop::all_algorithms()) {
    const RecordedRun clean = record_run(*alg, pb);
    const RecordedRun faulted = record_run(*alg, pb, plan);
    ASSERT_TRUE(faulted.completed) << alg->name() << ": " << faulted.failure;
    // Retransmit/dup/reorder machinery never leaks into the program: the
    // faulted recording has exactly the clean recording's op count.
    EXPECT_EQ(faulted.schedule.size(), clean.schedule.size()) << alg->name();
    const AnalysisReport report = analyze_schedule(faulted.schedule, pb);
    EXPECT_TRUE(report.ok()) << alg->name() << "\n" << report.to_string();
    // And the payloads land where the clean run put them.
    EXPECT_EQ(faulted.final_payloads, clean.final_payloads) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, FaultedSchedule,
                         ::testing::Values("paragon4x4", "paragon8x8"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(FaultedSchedule, TwoSeedsRecordTheSameOperationMultiset) {
  // Different fault seeds reshuffle arrival order, which permutes the
  // segments of wildcard pools in the recording (the nondeterminism the
  // src/verify explorer proves harmless).  What must not move is the
  // *multiset* of operations each rank performs — and where the payloads
  // land.
  const machine::MachineConfig machine = machine::paragon(4, 4);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kRow, 4, 2048);
  const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
  const RecordedRun a = record_run(*alg, pb, adverse_plan(machine, 7));
  const RecordedRun b = record_run(*alg, pb, adverse_plan(machine, 1234));
  ASSERT_TRUE(a.completed && b.completed);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  const auto signature = [](const mp::Schedule& s) {
    std::vector<std::tuple<Rank, int, Rank, int, Bytes>> sig;
    for (const mp::ScheduleOp& op : s.ops())
      sig.emplace_back(op.rank, static_cast<int>(op.kind), op.peer, op.tag,
                       op.wire_bytes);
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signature(a.schedule), signature(b.schedule));
  EXPECT_EQ(a.final_payloads, b.final_payloads);
}

}  // namespace
}  // namespace spb::analyze
