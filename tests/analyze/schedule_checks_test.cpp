#include "analyze/checks.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analyze/record.h"
#include "common/check.h"
#include "machine/config.h"
#include "mp/mailbox.h"
#include "mp/schedule.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

// Synthetic schedules built op by op exercise each static check in
// isolation; one recorded real run pins the clean path.

namespace spb::analyze {
namespace {

using mp::ScheduleOp;

ScheduleOp send_op(int id, Rank rank, Rank dst, int tag, Bytes wire,
                   std::vector<Rank> chunks, Bytes payload) {
  ScheduleOp op;
  op.kind = ScheduleOp::Kind::kSend;
  op.id = id;
  op.rank = rank;
  op.peer = dst;
  op.tag = tag;
  op.wire_bytes = wire;
  op.chunk_sources = std::move(chunks);
  op.payload_bytes = payload;
  return op;
}

ScheduleOp recv_op(int id, Rank rank, Rank src, int tag) {
  ScheduleOp op;
  op.kind = ScheduleOp::Kind::kRecv;
  op.id = id;
  op.rank = rank;
  op.peer = src;
  op.tag = tag;
  return op;
}

stop::Problem two_rank_problem(std::vector<Rank> sources = {0, 1}) {
  return stop::make_problem(machine::paragon(1, 2), std::move(sources),
                            1000);
}

bool has_kind(const AnalysisReport& r, Violation::Kind k) {
  for (const Violation& v : r.violations)
    if (v.kind == k) return true;
  return false;
}

const Violation& first_of_kind(const AnalysisReport& r, Violation::Kind k) {
  for (const Violation& v : r.violations)
    if (v.kind == k) return v;
  throw std::runtime_error("kind not present");
}

TEST(AnalyzeChecks, CleanPairwiseExchangeHasNoViolations) {
  // Eager-send-then-receive exchange: the canonical deadlock-free pattern.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {0}, 1000),
          send_op(1, 1, 0, 0, 1020, {1}, 1000), recv_op(2, 0, 1, 0),
          recv_op(3, 1, 0, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.quality.critical_depth, 1);
  EXPECT_EQ(report.quality.total_payload_bytes, 2000u);
  EXPECT_EQ(report.quality.round_lower_bound, 0);  // s == p
}

TEST(AnalyzeChecks, UnmatchedRecvReportsHang) {
  const mp::Schedule sched =
      mp::Schedule::from_ops(2, {recv_op(0, 0, 1, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  ASSERT_TRUE(has_kind(report, Violation::Kind::kUnmatchedRecv));
  const Violation& v =
      first_of_kind(report, Violation::Kind::kUnmatchedRecv);
  EXPECT_EQ(v.rank, 0);
  EXPECT_EQ(v.step, 0);
  EXPECT_NE(v.message.find("hangs"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("rank 0"), std::string::npos) << v.message;
}

TEST(AnalyzeChecks, UnreceivedSendReportsLostTraffic) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {0}, 1000)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  ASSERT_TRUE(has_kind(report, Violation::Kind::kUnreceivedSend));
  const Violation& v =
      first_of_kind(report, Violation::Kind::kUnreceivedSend);
  EXPECT_EQ(v.rank, 0);
  EXPECT_NE(v.message.find("no receive on rank 1"), std::string::npos)
      << v.message;
  // The chunk never propagates, so coverage breaks downstream too.
  EXPECT_TRUE(has_kind(report, Violation::Kind::kCoverage));
}

TEST(AnalyzeChecks, SizeMismatchBetweenMatchedPair) {
  ScheduleOp recv = recv_op(1, 1, 0, 0);
  recv.completed = true;
  recv.match = 0;
  recv.wire_bytes = 999;  // recorded arrival disagrees with the send
  recv.chunk_sources = {0};
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {0}, 1000), recv});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  EXPECT_TRUE(has_kind(report, Violation::Kind::kSizeMismatch));
}

TEST(AnalyzeChecks, RecvBeforeSendCycleIsReported) {
  // Both ranks receive before sending: a classic deadlock under
  // synchronous matching.  The wait-for graph has a 4-op cycle.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {recv_op(0, 0, 1, 0), recv_op(1, 1, 0, 0),
          send_op(2, 0, 1, 0, 1020, {0}, 1000),
          send_op(3, 1, 0, 0, 1020, {1}, 1000)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  ASSERT_TRUE(has_kind(report, Violation::Kind::kDeadlockCycle));
  const Violation& v =
      first_of_kind(report, Violation::Kind::kDeadlockCycle);
  EXPECT_NE(v.message.find("wait-for cycle of 4 op(s)"), std::string::npos)
      << v.message;
  EXPECT_NE(v.message.find("rank 0"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("rank 1"), std::string::npos) << v.message;
}

TEST(AnalyzeChecks, DuplicateChunkInOneMessage) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 2040, {0, 0}, 2000), recv_op(1, 1, 0, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  ASSERT_TRUE(has_kind(report, Violation::Kind::kChunkIntegrity));
  const Violation& v =
      first_of_kind(report, Violation::Kind::kChunkIntegrity);
  EXPECT_NE(v.message.find("source 0"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("more than once"), std::string::npos)
      << v.message;
}

TEST(AnalyzeChecks, ChunkOfNonSourceRankFlagged) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {7}, 1000), recv_op(1, 1, 0, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  EXPECT_TRUE(has_kind(report, Violation::Kind::kUnknownSource));
}

TEST(AnalyzeChecks, SendingAChunkNeverHeldIsProvenanceViolation) {
  // Rank 0 ships source 1's chunk without ever receiving it.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {1}, 1000), recv_op(1, 1, 0, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  ASSERT_TRUE(has_kind(report, Violation::Kind::kProvenance));
  const Violation& v = first_of_kind(report, Violation::Kind::kProvenance);
  EXPECT_NE(v.message.find("neither originated nor received"),
            std::string::npos)
      << v.message;
}

TEST(AnalyzeChecks, RedundantDeliveryIsMetricNotViolation) {
  // Rank 1 echoes source 0's chunk back to rank 0, which already holds
  // it — deliberate redundancy (PersAlltoAll-style), counted not flagged.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {0}, 1000), recv_op(1, 1, 0, 0),
          send_op(2, 1, 0, 0, 2040, {1, 0}, 2000), recv_op(3, 0, 1, 0)});
  const AnalysisReport report = analyze_schedule(sched, two_rank_problem());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.quality.redundant_chunk_deliveries, 1);
  EXPECT_EQ(report.quality.redundant_payload_bytes, 1000u);
}

TEST(AnalyzeChecks, QualityGatesTripOnlyWhenEnabled) {
  // 1-to-2 broadcast done three times over: wasteful but correct.
  const mp::Schedule sched = mp::Schedule::from_ops(
      2, {send_op(0, 0, 1, 0, 1020, {0}, 1000), recv_op(1, 1, 0, 0),
          send_op(2, 0, 1, 0, 1020, {0}, 1000), recv_op(3, 1, 0, 0),
          send_op(4, 0, 1, 0, 1020, {0}, 1000), recv_op(5, 1, 0, 0)});
  const stop::Problem pb = two_rank_problem({0});
  EXPECT_TRUE(analyze_schedule(sched, pb).ok());

  AnalysisOptions gates;
  gates.max_step_slack = 1.0;    // 3 steps vs. lower bound 1 round
  gates.max_volume_slack = 2.0;  // 3000B vs. lower bound 500B
  const AnalysisReport gated = analyze_schedule(sched, pb, gates);
  int quality = 0;
  for (const Violation& v : gated.violations)
    if (v.kind == Violation::Kind::kQuality) ++quality;
  EXPECT_EQ(quality, 2) << gated.to_string();
}

TEST(AnalyzeChecks, RecordedTwoStepRunPassesAllChecks) {
  const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
  const stop::Problem pb = stop::make_problem(
      machine::paragon(4, 4), dist::Kind::kRow, 4, 2048);
  const RecordedRun run = record_run(*alg, pb);
  ASSERT_TRUE(run.completed) << run.failure;
  const AnalysisReport report = analyze_schedule(run.schedule, pb);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // p = 16, s = 4: no schedule can finish in fewer than 2 rounds.
  EXPECT_EQ(report.quality.round_lower_bound, 2);
  EXPECT_GE(report.quality.critical_depth,
            report.quality.round_lower_bound);
  EXPECT_GT(report.quality.total_payload_bytes, 0u);
}

TEST(AnalyzeChecks, RankCountMismatchRejected) {
  const mp::Schedule sched = mp::Schedule::from_ops(
      4, {send_op(0, 0, 1, 0, 1020, {0}, 1000), recv_op(1, 1, 0, 0)});
  EXPECT_THROW(analyze_schedule(sched, two_rank_problem()), CheckError);
}

}  // namespace
}  // namespace spb::analyze
