#include "analyze/mutate.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analyze/checks.h"
#include "analyze/record.h"
#include "common/check.h"
#include "machine/config.h"
#include "mp/mailbox.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

// Seeded-bug harness: each mutation corrupts a recorded 2-Step schedule
// (fully tag-pinned, so every mutation has eligible ops) and the static
// analyzer must flag it with a report naming the culprit.

namespace spb::analyze {
namespace {

struct Recorded {
  stop::Problem pb;
  mp::Schedule schedule;
};

const Recorded& recorded_two_step() {
  static const Recorded r = [] {
    const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
    stop::Problem pb = stop::make_problem(machine::paragon(4, 4),
                                          dist::Kind::kRow, 4, 2048);
    RecordedRun run = record_run(*alg, pb);
    SPB_CHECK_MSG(run.completed, run.failure);
    return Recorded{std::move(pb), std::move(run.schedule)};
  }();
  return r;
}

bool has_kind(const AnalysisReport& r, Violation::Kind k) {
  for (const Violation& v : r.violations)
    if (v.kind == k) return true;
  return false;
}

TEST(Mutation, DropSendIsFlaggedWithHangAndCoverage) {
  const Recorded& rec = recorded_two_step();
  const MutationResult mut =
      apply_mutation(rec.schedule, Mutation::kDropSend, /*seed=*/3);
  EXPECT_EQ(mut.schedule.size(), rec.schedule.size() - 1);
  const AnalysisReport report = analyze_schedule(mut.schedule, rec.pb);
  EXPECT_FALSE(report.ok());
  // The dropped message's receiver can never be satisfied (pigeonhole on
  // its mailbox), and its chunks never reach the subtree behind it.
  EXPECT_TRUE(has_kind(report, Violation::Kind::kUnmatchedRecv))
      << report.to_string();
  EXPECT_TRUE(has_kind(report, Violation::Kind::kCoverage))
      << report.to_string();
  EXPECT_NE(mut.description.find("rank"), std::string::npos)
      << mut.description;
}

TEST(Mutation, TagMismatchStarvesReceiverAndStrandsSend) {
  const Recorded& rec = recorded_two_step();
  const MutationResult mut =
      apply_mutation(rec.schedule, Mutation::kTagMismatch, /*seed=*/3);
  const AnalysisReport report = analyze_schedule(mut.schedule, rec.pb);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, Violation::Kind::kUnmatchedRecv))
      << report.to_string();
  EXPECT_TRUE(has_kind(report, Violation::Kind::kUnreceivedSend))
      << report.to_string();
}

TEST(Mutation, DuplicateChunkTripsIntegrity) {
  const Recorded& rec = recorded_two_step();
  const MutationResult mut =
      apply_mutation(rec.schedule, Mutation::kDuplicateChunk, /*seed=*/3);
  const AnalysisReport report = analyze_schedule(mut.schedule, rec.pb);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, Violation::Kind::kChunkIntegrity))
      << report.to_string();
}

TEST(Mutation, CyclicWaitClosesAWaitForCycle) {
  const Recorded& rec = recorded_two_step();
  const MutationResult mut =
      apply_mutation(rec.schedule, Mutation::kCyclicWait, /*seed=*/3);
  // Same ops, reordered: nothing is added or removed, and the recorded
  // matching survives the reorder (from_ops remaps edges by id).
  EXPECT_EQ(mut.schedule.size(), rec.schedule.size());
  const AnalysisReport report = analyze_schedule(mut.schedule, rec.pb);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_kind(report, Violation::Kind::kDeadlockCycle))
      << report.to_string();
  EXPECT_NE(mut.description.find("circular wait"), std::string::npos)
      << mut.description;
}

TEST(Mutation, CyclicWaitNeedsAnExchangePair) {
  // One send, one receive, no reciprocal traffic: nothing to reorder.
  mp::ScheduleOp send;
  send.kind = mp::ScheduleOp::Kind::kSend;
  send.id = 0;
  send.rank = 0;
  send.peer = 1;
  send.tag = 0;
  send.wire_bytes = 1020;
  send.chunk_sources = {0};
  send.payload_bytes = 1000;
  send.match = 1;
  mp::ScheduleOp recv;
  recv.kind = mp::ScheduleOp::Kind::kRecv;
  recv.id = 1;
  recv.rank = 1;
  recv.peer = 0;
  recv.tag = 0;
  recv.completed = true;
  recv.match = 0;
  const mp::Schedule sched = mp::Schedule::from_ops(2, {send, recv});
  EXPECT_THROW(apply_mutation(sched, Mutation::kCyclicWait, 1), CheckError);
}

TEST(Mutation, SameSeedPicksSameTarget) {
  const Recorded& rec = recorded_two_step();
  const MutationResult a =
      apply_mutation(rec.schedule, Mutation::kDropSend, 42);
  const MutationResult b =
      apply_mutation(rec.schedule, Mutation::kDropSend, 42);
  EXPECT_EQ(a.target_op, b.target_op);
  EXPECT_EQ(a.description, b.description);
}

TEST(Mutation, TagMismatchNeedsATagPinnedReceive) {
  // A schedule whose only receive is fully wildcard has no eligible op.
  mp::ScheduleOp send;
  send.kind = mp::ScheduleOp::Kind::kSend;
  send.id = 0;
  send.rank = 0;
  send.peer = 1;
  send.tag = 0;
  send.wire_bytes = 1020;
  send.chunk_sources = {0};
  send.payload_bytes = 1000;
  send.match = 1;
  mp::ScheduleOp recv;
  recv.kind = mp::ScheduleOp::Kind::kRecv;
  recv.id = 1;
  recv.rank = 1;
  recv.peer = mp::kAnySource;
  recv.tag = mp::kAnyTag;
  recv.completed = true;
  recv.match = 0;
  const mp::Schedule sched = mp::Schedule::from_ops(2, {send, recv});
  EXPECT_THROW(apply_mutation(sched, Mutation::kTagMismatch, 1),
               CheckError);
}

TEST(Mutation, NamesRoundTrip) {
  for (const Mutation m : all_mutations())
    EXPECT_EQ(mutation_from_name(mutation_name(m)), m);
  EXPECT_THROW(mutation_from_name("no-such-mutation"), CheckError);
}

}  // namespace
}  // namespace spb::analyze
